//! Static reconstruction of the GPU block dispatcher (Section V).
//!
//! "To identify the critical SMs, we need to know how the GPU schedules
//! thread blocks to SMs... We can determine critical SMs based on
//! analyzing execution time of a workload and thread block distribution."
//!
//! The analysis replays the dispatcher's logic without running anything:
//! round-robin waves under occupancy limits place the initial blocks;
//! whatever does not fit stays *untouched*; the untouched pool is then
//! redistributed round-robin to the SMs that finish their initial
//! allocation first (estimated from solo block times with the
//! interleaving-aware per-SM formula). The result is a two-phase per-SM
//! block assignment from which the performance model reads off the
//! critical SMs.

use ewc_gpu::occupancy::SmResources;
use ewc_gpu::{BlockCost, GpuConfig};

use crate::plan::ConsolidationPlan;

/// A block placed on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedBlock {
    /// Index into the plan's members.
    pub member: usize,
    /// 0 = initial wave placement, 1 = redistributed after first idle.
    pub phase: u8,
}

/// The static placement of a plan.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Per-SM block lists.
    pub per_sm: Vec<Vec<PlacedBlock>>,
    /// Per-member solo block costs, aligned with the plan.
    pub costs: Vec<BlockCost>,
    /// Whether a redistribution phase occurred.
    pub redistributed: bool,
}

impl Placement {
    /// SMs with at least one block.
    pub fn sms_used(&self) -> usize {
        self.per_sm.iter().filter(|b| !b.is_empty()).count()
    }

    /// Largest number of blocks any SM holds.
    pub fn max_blocks_per_sm(&self) -> usize {
        self.per_sm.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The paper's *type 1* consolidations: at most one block per SM.
    pub fn is_type1(&self) -> bool {
        self.max_blocks_per_sm() <= 1
    }
}

/// Interleaving-aware elapsed-time estimate for a set of co-scheduled
/// blocks on one SM: `max(Σ dᵢ·tᵢ, max tᵢ)` — treat them "as one single
/// big workload" (Section V).
pub fn sm_phase_time(blocks: &[&BlockCost]) -> f64 {
    let issue: f64 = blocks.iter().map(|c| c.issue_demand * c.t_solo_s).sum();
    let longest = blocks.iter().map(|c| c.t_solo_s).fold(0.0, f64::max);
    issue.max(longest)
}

/// Statically place a plan on the device.
pub fn analyze(plan: &ConsolidationPlan, cfg: &GpuConfig) -> Placement {
    let n_sms = cfg.num_sms as usize;
    let costs: Vec<BlockCost> = plan
        .members
        .iter()
        .map(|m| BlockCost::derive(&m.desc, cfg))
        .collect();

    // Expand to the global block list in template order.
    let order: Vec<usize> = plan
        .members
        .iter()
        .enumerate()
        .flat_map(|(mi, m)| std::iter::repeat_n(mi, m.blocks as usize))
        .collect();

    let mut per_sm: Vec<Vec<PlacedBlock>> = vec![Vec::new(); n_sms];
    let mut res: Vec<SmResources> = (0..n_sms).map(|_| SmResources::new(cfg)).collect();
    let mut pool = std::collections::VecDeque::from(order);

    // Round-robin waves: each pass admits at most one block per SM.
    loop {
        let mut progress = false;
        for sm in 0..n_sms {
            let Some(&mi) = pool.front() else { break };
            if res[sm].admit(&plan.members[mi].desc) {
                per_sm[sm].push(PlacedBlock {
                    member: mi,
                    phase: 0,
                });
                pool.pop_front();
                progress = true;
            }
        }
        if !progress || pool.is_empty() {
            break;
        }
    }

    let mut redistributed = false;
    if !pool.is_empty() {
        // Phase-1 finish estimate per busy SM.
        let finish: Vec<f64> = per_sm
            .iter()
            .map(|blocks| {
                let refs: Vec<&BlockCost> = blocks.iter().map(|b| &costs[b.member]).collect();
                if refs.is_empty() {
                    0.0
                } else {
                    sm_phase_time(&refs)
                }
            })
            .collect();
        let min_busy = finish
            .iter()
            .filter(|&&t| t > 0.0)
            .fold(f64::INFINITY, |a, &b| a.min(b));
        let idle: Vec<usize> = (0..n_sms)
            .filter(|&sm| finish[sm] > 0.0 && finish[sm] <= min_busy * (1.0 + 1e-9))
            .collect();
        if !idle.is_empty() {
            let mut next = 0usize;
            while let Some(mi) = pool.pop_front() {
                per_sm[idle[next % idle.len()]].push(PlacedBlock {
                    member: mi,
                    phase: 1,
                });
                next += 1;
            }
            redistributed = true;
        }
    }

    Placement {
        per_sm,
        costs,
        redistributed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::KernelSpec;
    use ewc_gpu::KernelDesc;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_c1060()
    }

    fn compute(name: &str, tpb: u32, regs: u32, secs: f64) -> KernelDesc {
        let c = cfg();
        let warps = f64::from(tpb.div_ceil(32));
        KernelDesc::builder(name)
            .threads_per_block(tpb)
            .regs_per_thread(regs)
            .comp_insts(secs * c.clock_hz / (warps * c.warp_issue_cycles()))
            .build()
    }

    #[test]
    fn single_wave_is_type1() {
        let plan = ConsolidationPlan::new().with(KernelSpec::new(compute("k", 256, 16, 1.0), 27));
        let p = analyze(&plan, &cfg());
        assert!(p.is_type1());
        assert_eq!(p.sms_used(), 27);
        assert!(!p.redistributed);
    }

    #[test]
    fn scenario1_shape_redistributes_onto_short_kernel_sms() {
        // 15 short register-heavy blocks + 45 long occupancy-1 blocks:
        // SMs 0–14 end up with 1 short + 2 long (the critical SMs).
        let short = compute("enc", 256, 40, 19.5);
        let long = compute("mc", 128, 68, 31.2);
        let plan = ConsolidationPlan::new()
            .with(KernelSpec::new(short, 15))
            .with(KernelSpec::new(long, 45));
        let p = analyze(&plan, &cfg());
        assert!(p.redistributed);
        assert!(!p.is_type1());
        for sm in 0..15 {
            let members: Vec<usize> = p.per_sm[sm].iter().map(|b| b.member).collect();
            assert_eq!(members, vec![0, 1, 1], "SM{sm} should hold 1 enc + 2 mc");
            assert_eq!(p.per_sm[sm][1].phase, 1);
        }
        for sm in 15..30 {
            let members: Vec<usize> = p.per_sm[sm].iter().map(|b| b.member).collect();
            assert_eq!(members, vec![1], "SM{sm} should hold a single mc block");
        }
    }

    #[test]
    fn scenario2_shape_coresides_search_and_bs() {
        let search = {
            let mut d = compute("search", 256, 16, 10.0);
            // Make it latency-bound: little issue demand.
            d.comp_insts = 0.0;
            d.uncoalesced_mem = 4.0e6;
            d
        };
        let bs = compute("bs", 256, 28, 13.2);
        let plan = ConsolidationPlan::new()
            .with(KernelSpec::new(search, 15))
            .with(KernelSpec::new(bs, 45));
        let p = analyze(&plan, &cfg());
        // 60 blocks fill exactly two waves: SMs 0–14 hold 1 search + 1
        // BS (the paper's critical-SM placement), SMs 15–29 hold 2 BS.
        // Nothing is left untouched, so no redistribution occurs.
        for sm in 0..15 {
            let members: Vec<usize> = p.per_sm[sm].iter().map(|b| b.member).collect();
            assert_eq!(members, vec![0, 1], "SM{sm} should hold search + BS");
        }
        for sm in 15..30 {
            let members: Vec<usize> = p.per_sm[sm].iter().map(|b| b.member).collect();
            assert_eq!(members, vec![1, 1], "SM{sm} should hold 2 BS");
        }
        assert!(!p.redistributed);
    }

    #[test]
    fn phase_time_interleaves_below_saturation() {
        let c = cfg();
        let mem = {
            let mut d = KernelDesc::builder("m").threads_per_block(64).build();
            d.uncoalesced_mem = 1e5;
            BlockCost::derive(&d, &c)
        };
        let comp = BlockCost::derive(&compute("c", 64, 16, mem.t_solo_s * 0.4), &c);
        let t = sm_phase_time(&[&mem, &comp]);
        // Σd·t small; the long memory block dominates.
        assert!((t - mem.t_solo_s).abs() / mem.t_solo_s < 0.2);
        // Two compute blocks serialise.
        let t2 = sm_phase_time(&[&comp, &comp]);
        assert!((t2 - 2.0 * comp.t_solo_s).abs() < 1e-9);
    }

    #[test]
    fn empty_plan_places_nothing() {
        let p = analyze(&ConsolidationPlan::new(), &cfg());
        assert_eq!(p.sms_used(), 0);
        assert!(p.is_type1());
    }
}
