//! Energy prediction: `E = P̄ × T` (Section VII).
//!
//! The decision engine compares whole-system joules across alternatives
//! (consolidate on GPU / run serially on GPU / run on CPU), so the
//! energy model composes the performance and power models with the
//! system idle floor.

use ewc_energy::PowerState;
use ewc_gpu::GpuConfig;

use crate::perf::{PerfModel, PerfPrediction};
use crate::placement::analyze;
use crate::plan::ConsolidationPlan;
use crate::power::PowerModel;

/// A complete prediction for one consolidation plan.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Predicted execution time.
    pub time_s: f64,
    /// Predicted average GPU dynamic power.
    pub dyn_power_w: f64,
    /// Predicted thermal (leakage) power at steady state.
    pub thermal_w: f64,
    /// Predicted GPU-attributed energy (dynamic + thermal).
    pub gpu_energy_j: f64,
    /// Predicted whole-system energy (idle floor included).
    pub system_energy_j: f64,
    /// The DVFS state this prediction was evaluated in (`None` = the
    /// flat single-state path, which is the P0 anchor).
    pub state: Option<PowerState>,
    /// The underlying performance prediction.
    pub perf: PerfPrediction,
}

/// A prediction bracketed by descriptor uncertainty.
///
/// PTX-derived instruction counts are estimates (the paper extracts them
/// by static analysis, which misses data-dependent control flow), so the
/// backend can ask for a bracket: every member's dynamic counts scaled
/// down/up by a relative `eps`. If even the optimistic consolidated
/// bound does not beat the pessimistic serial bound, the decision is
/// robust to descriptor error.
#[derive(Debug, Clone)]
pub struct PredictionRange {
    /// All dynamic counts scaled by `1 − eps`.
    pub low: Prediction,
    /// The unperturbed prediction.
    pub nominal: Prediction,
    /// All dynamic counts scaled by `1 + eps`.
    pub high: Prediction,
}

/// Combined time/power/energy model.
#[derive(Debug, Clone)]
pub struct EnergyModel {
    perf: PerfModel,
    power: PowerModel,
    idle_w: f64,
}

impl EnergyModel {
    /// Compose the models with the system idle power.
    pub fn new(cfg: GpuConfig, power: PowerModel, idle_w: f64) -> Self {
        EnergyModel {
            perf: PerfModel::new(cfg),
            power,
            idle_w,
        }
    }

    /// The system idle power used for composition.
    pub fn idle_w(&self) -> f64 {
        self.idle_w
    }

    /// The inner performance model.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// The inner power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// Predict time, power and energy for a consolidated launch of `plan`.
    pub fn predict(&self, plan: &ConsolidationPlan) -> Prediction {
        let placement = analyze(plan, self.perf.config());
        let perf = self.perf.predict_placed(plan, &placement);
        let rates = self
            .power
            .predicted_rates(plan, &placement, perf.time_s, &perf.per_sm_finish);
        let dyn_power_w = self.power.predict_dyn_power_w(&rates);
        let thermal_w = self.power.predict_thermal_w(dyn_power_w);
        let gpu_energy_j = (dyn_power_w + thermal_w) * perf.time_s;
        let system_energy_j = gpu_energy_j + self.idle_w * perf.time_s;
        Prediction {
            time_s: perf.time_s,
            dyn_power_w,
            thermal_w,
            gpu_energy_j,
            system_energy_j,
            state: None,
            perf,
        }
    }

    /// Predict a consolidated launch with the device held at DVFS state
    /// `state`: the performance model runs on a clock-scaled
    /// configuration (compute time ∝ `1/f`, DRAM bandwidth unchanged),
    /// the rate-derived dynamic power — which already carries the `f`
    /// factor through the slower rates — is then scaled by `V²`, giving
    /// the classic `f·V²` dynamic law relative to P0. At the P0 anchor
    /// (`f = V = 1`) this is bit-identical to [`EnergyModel::predict`].
    pub fn predict_in_state(&self, plan: &ConsolidationPlan, state: &PowerState) -> Prediction {
        if state.freq_scale == 1.0 && state.volt_scale == 1.0 {
            return Prediction {
                state: Some(*state),
                ..self.predict(plan)
            };
        }
        let mut cfg = self.perf.config().clone();
        cfg.clock_hz *= state.freq_scale;
        let perf_model = PerfModel::new(cfg.clone());
        let power_model = self.power.with_config(cfg.clone());
        let placement = analyze(plan, &cfg);
        let perf = perf_model.predict_placed(plan, &placement);
        let rates = power_model.predicted_rates(plan, &placement, perf.time_s, &perf.per_sm_finish);
        let dyn_power_w = power_model.predict_dyn_power_w(&rates) * state.volt_sq();
        let thermal_w = power_model.predict_thermal_w(dyn_power_w);
        let gpu_energy_j = (dyn_power_w + thermal_w) * perf.time_s;
        let system_energy_j = gpu_energy_j + self.idle_w * perf.time_s;
        Prediction {
            time_s: perf.time_s,
            dyn_power_w,
            thermal_w,
            gpu_energy_j,
            system_energy_j,
            state: Some(*state),
            perf,
        }
    }

    /// The serial alternative evaluated at DVFS state `state` (mirrors
    /// [`EnergyModel::predict_serial`]).
    pub fn predict_serial_in_state(
        &self,
        plan: &ConsolidationPlan,
        state: &PowerState,
    ) -> Prediction {
        let mut time = 0.0;
        let mut gpu_energy = 0.0;
        let mut last_perf = None;
        for m in &plan.members {
            let single = ConsolidationPlan::new()
                .with(crate::plan::KernelSpec::new(m.desc.clone(), m.blocks));
            let p = self.predict_in_state(&single, state);
            time += p.time_s;
            gpu_energy += p.gpu_energy_j;
            last_perf = Some(p.perf);
        }
        let system = gpu_energy + self.idle_w * time;
        Prediction {
            time_s: time,
            dyn_power_w: if time > 0.0 { gpu_energy / time } else { 0.0 },
            thermal_w: 0.0,
            gpu_energy_j: gpu_energy,
            system_energy_j: system,
            state: Some(*state),
            perf: last_perf.unwrap_or_else(|| self.perf.predict(&ConsolidationPlan::new())),
        }
    }

    /// Predict with a ±`eps` relative uncertainty on every member's
    /// dynamic instruction counts.
    pub fn predict_with_uncertainty(&self, plan: &ConsolidationPlan, eps: f64) -> PredictionRange {
        assert!((0.0..1.0).contains(&eps), "eps must be in [0, 1)");
        let scaled = |factor: f64| {
            let mut p = ConsolidationPlan::new();
            for m in &plan.members {
                p.push(crate::plan::KernelSpec::new(
                    m.desc.scaled(factor),
                    m.blocks,
                ));
            }
            p
        };
        PredictionRange {
            low: self.predict(&scaled(1.0 - eps)),
            nominal: self.predict(plan),
            high: self.predict(&scaled(1.0 + eps)),
        }
    }

    /// Predict the serial (one launch after another) alternative: same
    /// total work, but each member runs alone — time sums, and each
    /// launch's power reflects its own low utilisation.
    pub fn predict_serial(&self, plan: &ConsolidationPlan) -> Prediction {
        let mut time = 0.0;
        let mut gpu_energy = 0.0;
        let mut last_perf = None;
        for m in &plan.members {
            let single = ConsolidationPlan::new()
                .with(crate::plan::KernelSpec::new(m.desc.clone(), m.blocks));
            let p = self.predict(&single);
            time += p.time_s;
            gpu_energy += p.gpu_energy_j;
            last_perf = Some(p.perf);
        }
        let system = gpu_energy + self.idle_w * time;
        Prediction {
            time_s: time,
            dyn_power_w: if time > 0.0 { gpu_energy / time } else { 0.0 },
            thermal_w: 0.0,
            gpu_energy_j: gpu_energy,
            system_energy_j: system,
            state: None,
            perf: last_perf.unwrap_or_else(|| self.perf.predict(&ConsolidationPlan::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::KernelSpec;
    use ewc_energy::{GpuPowerGroundTruth, PowerCoefficients, ThermalModel, TrainingBenchmark};
    use ewc_gpu::KernelDesc;

    fn cfg() -> GpuConfig {
        GpuConfig::tesla_c1060()
    }

    fn energy_model() -> EnergyModel {
        let coeffs = PowerCoefficients::train(
            &cfg(),
            &GpuPowerGroundTruth::tesla_c1060(),
            &TrainingBenchmark::rodinia_suite(),
            42,
        )
        .unwrap();
        EnergyModel::new(
            cfg(),
            PowerModel::new(coeffs, ThermalModel::gt200(), cfg()),
            200.0,
        )
    }

    fn compute(name: &str, secs: f64) -> KernelDesc {
        let c = cfg();
        KernelDesc::builder(name)
            .threads_per_block(256)
            .comp_insts(secs * c.clock_hz / (8.0 * c.warp_issue_cycles()))
            .build()
    }

    #[test]
    fn consolidation_saves_energy_for_underutilising_kernels() {
        // Nine 3-block encryption instances: consolidated time ≈ single
        // instance time; serial time = 9×. Energy must follow.
        let m = energy_model();
        let plan = ConsolidationPlan::homogeneous(compute("enc", 8.4), 3, 9);
        let cons = m.predict(&plan);
        let serial = m.predict_serial(&plan);
        assert!(cons.time_s < serial.time_s / 5.0);
        assert!(cons.system_energy_j < serial.system_energy_j / 3.0);
        // Power while consolidated is higher (more SMs busy)…
        assert!(cons.dyn_power_w > serial.gpu_energy_j / serial.time_s);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = energy_model();
        let plan = ConsolidationPlan::new().with(KernelSpec::new(compute("k", 5.0), 20));
        let p = m.predict(&plan);
        let expect = (p.dyn_power_w + p.thermal_w + 200.0) * p.time_s;
        assert!((p.system_energy_j - expect).abs() < 1e-6);
        assert!(p.gpu_energy_j < p.system_energy_j);
    }

    #[test]
    fn bad_consolidation_predicted_worse_than_serial() {
        // The scenario-1 shape: both compute-bound, the long kernel
        // occupancy-1 — consolidation serialises on the critical SMs and
        // adds contention, so predicted energy must NOT beat serial.
        let mut enc = compute("enc", 19.5);
        enc.regs_per_thread = 40;
        let mc = {
            let c = cfg();
            KernelDesc::builder("mc")
                .threads_per_block(128)
                .regs_per_thread(68)
                .comp_insts(31.2 * c.clock_hz / (4.0 * c.warp_issue_cycles()))
                .build()
        };
        let m = energy_model();
        let plan = ConsolidationPlan::new()
            .with(KernelSpec::new(enc, 15))
            .with(KernelSpec::new(mc, 45));
        let cons = m.predict(&plan);
        let serial = m.predict_serial(&plan);
        assert!(
            cons.time_s > 0.95 * serial.time_s,
            "scenario 1 consolidation should not beat serial: {} vs {}",
            cons.time_s,
            serial.time_s
        );
    }

    #[test]
    fn uncertainty_brackets_the_nominal_prediction() {
        let m = energy_model();
        let plan = ConsolidationPlan::homogeneous(compute("enc", 8.4), 3, 6);
        let r = m.predict_with_uncertainty(&plan, 0.10);
        assert!(r.low.time_s <= r.nominal.time_s);
        assert!(r.nominal.time_s <= r.high.time_s);
        assert!(r.low.system_energy_j < r.high.system_energy_j);
        // A 10% count error is ~10% time error for compute-bound kernels.
        assert!((r.high.time_s / r.nominal.time_s - 1.1).abs() < 0.02);
        // Wider eps, wider bracket.
        let wide = m.predict_with_uncertainty(&plan, 0.25);
        assert!(wide.high.time_s > r.high.time_s);
        assert!(wide.low.time_s < r.low.time_s);
    }

    #[test]
    fn adding_a_member_never_reduces_predicted_time() {
        let m = energy_model();
        let mut plan = ConsolidationPlan::new();
        let mut last = 0.0;
        for i in 0..12 {
            plan.push(KernelSpec::new(compute("k", 2.0 + f64::from(i % 3)), 5));
            let t = m.predict(&plan).time_s;
            assert!(t >= last - 1e-9, "member {i}: {t} < {last}");
            last = t;
        }
    }

    #[test]
    fn empty_plan_predicts_zero() {
        let m = energy_model();
        let p = m.predict(&ConsolidationPlan::new());
        assert_eq!(p.time_s, 0.0);
        assert_eq!(p.system_energy_j, 0.0);
    }
}
