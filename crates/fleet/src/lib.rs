//! Fleet layer: placement of contexts onto a heterogeneous GPU fleet.
//!
//! The paper consolidates workloads onto a single Tesla C1060; a
//! datacenter runs many cards of mixed generations. This crate adds the
//! layer *above* the per-device consolidator:
//!
//! - [`FleetConfig`] describes N optionally heterogeneous devices
//!   ([`DeviceSpec`]: per-device SM count, bandwidth, and power-curve
//!   scaling, all derived from the `GpuConfig::tesla_c1060()` preset);
//! - [`PlacementPolicy`] is the deterministic context→device binding
//!   strategy, with four implementations ([`RoundRobin`],
//!   [`LeastLoaded`], [`PowerAware`], [`FragAware`]);
//! - [`FleetGovernor`] owns the policy, an optional fleet-level power
//!   cap, and **per-device** [`CircuitBreaker`]s so one sick card no
//!   longer closes the GPU path for the whole fleet — its contexts are
//!   drained and re-placed on healthy devices instead.
//!
//! Everything is pure bookkeeping over values read from
//! [`ewc_exec::VirtualClock`] handles: same-seed runs replay
//! byte-identically, and the crate has no dependency on the backend it
//! serves (`ewc-core` depends on `ewc-fleet`, not the other way round).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod breaker;
mod config;
mod governor;
mod policy;

pub use breaker::{CircuitBreaker, ResiliencePolicy};
pub use config::{DeviceSpec, FleetConfig, PolicyKind};
pub use governor::{FleetGovernor, PlacementReason, PlacementRecord, StateChangeRecord};
pub use policy::{DeviceView, FragAware, LeastLoaded, PlacementPolicy, PowerAware, RoundRobin};
