//! Fleet description: per-device specs and the fleet-level knobs.

use ewc_gpu::GpuConfig;

use crate::policy::{FragAware, LeastLoaded, PlacementPolicy, PowerAware, RoundRobin};

/// Idle (static) draw of one card at the fleet's power-proxy scale 1.0,
/// watts. Matches the ~40 W a Tesla C1060 burns with no SM active.
pub const CARD_IDLE_W: f64 = 40.0;

/// Dynamic draw per active SM at full utilization, watts. With the
/// C1060's 30 SMs this lands the busy card near its ~190 W TDP
/// (40 + 30 × 5).
pub const SM_ACTIVE_W: f64 = 5.0;

/// Live contexts at which the placement power proxy treats a device as
/// fully utilized. A C1060 runs at most 8 blocks per SM, and the
/// backend's consolidator similarly saturates a card within a handful of
/// co-resident contexts.
pub const SATURATION_CTXS: u32 = 8;

/// One device in the fleet: the simulated card plus the scaling knobs
/// the placement layer scores with.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable label (shows up in telemetry and the CLI tables).
    pub name: String,
    /// The simulated card itself. Heterogeneity enters here: SM count,
    /// DRAM bandwidth, clock — all derived from the C1060 preset.
    pub gpu: GpuConfig,
    /// Multiplier on the device's power curve relative to the baseline
    /// C1060 (1.0). A die-shrunk part of the same architecture would sit
    /// below 1.0; a wider card above it.
    pub power_scale: f64,
}

impl DeviceSpec {
    /// The baseline device: an unscaled Tesla C1060.
    pub fn c1060() -> Self {
        DeviceSpec {
            name: "c1060".to_string(),
            gpu: GpuConfig::tesla_c1060(),
            power_scale: 1.0,
        }
    }

    /// A C1060 derivative: `sm_scale` multiplies the SM count (minimum
    /// one SM), `bw_scale` the DRAM bandwidth, `power_scale` the power
    /// curve. All other timing parameters stay at the preset's values so
    /// heterogeneous fleets remain comparable.
    pub fn scaled(name: &str, sm_scale: f64, bw_scale: f64, power_scale: f64) -> Self {
        let base = GpuConfig::tesla_c1060();
        let gpu = GpuConfig {
            num_sms: ((f64::from(base.num_sms) * sm_scale) as u32).max(1),
            dram_bandwidth: base.dram_bandwidth * bw_scale,
            ..base
        };
        DeviceSpec {
            name: name.to_string(),
            gpu,
            power_scale,
        }
    }

    /// Live contexts at which the placement proxy treats this card as
    /// saturated: [`SATURATION_CTXS`] scaled by the SM count relative to
    /// the baseline C1060 (minimum one).
    pub fn capacity(&self) -> u32 {
        let base_sms = GpuConfig::tesla_c1060().num_sms;
        ((SATURATION_CTXS * self.gpu.num_sms + base_sms / 2) / base_sms).max(1)
    }

    /// Placement-layer power proxy: estimated draw of this card with
    /// `ctxs` live contexts, watts. Linear in utilization between the
    /// idle floor and the all-SMs-busy ceiling — the same shape the
    /// trained per-device power model has, collapsed to one number so
    /// policies can score a binding without a kernel spec in hand.
    pub fn est_power_w(&self, ctxs: u32) -> f64 {
        let cap = self.capacity();
        let u = f64::from(ctxs.min(cap)) / f64::from(cap);
        self.power_scale * (CARD_IDLE_W + SM_ACTIVE_W * f64::from(self.gpu.num_sms) * u)
    }
}

/// Which placement policy the fleet governor runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// First-touch round robin over all devices — bit-compatible with
    /// the pre-fleet backend.
    RoundRobin,
    /// Fewest live contexts wins; ties break to the lowest index.
    LeastLoaded,
    /// Lowest marginal power draw wins (racing-to-idle: keep extra
    /// cards near their idle floor).
    PowerAware,
    /// Smallest fragmentation-gradient increase wins — packs contexts
    /// onto already-busy cards (à la arXiv 2412.17484).
    FragAware,
}

impl PolicyKind {
    /// Every policy, in comparison order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::RoundRobin,
        PolicyKind::LeastLoaded,
        PolicyKind::PowerAware,
        PolicyKind::FragAware,
    ];

    /// Stable CLI / telemetry label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::LeastLoaded => "least-loaded",
            PolicyKind::PowerAware => "power-aware",
            PolicyKind::FragAware => "frag-aware",
        }
    }

    /// Parse a CLI label back into a kind.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin::default()),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded),
            PolicyKind::PowerAware => Box::new(PowerAware),
            PolicyKind::FragAware => Box::new(FragAware),
        }
    }
}

/// The whole fleet: devices, the placement policy, and an optional
/// fleet-level power cap.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Devices, indexed as `gpu0..gpuN-1`.
    pub devices: Vec<DeviceSpec>,
    /// Context→device placement strategy.
    pub policy: PolicyKind,
    /// Optional fleet-level power cap, watts, on the placement power
    /// proxy. A binding whose projected fleet draw exceeds the cap is
    /// redirected to the device minimizing the projected draw (the cap
    /// redirects placement — it never refuses admission).
    pub power_cap_w: Option<f64>,
}

impl FleetConfig {
    /// `n` identical baseline C1060s under round robin — the
    /// configuration that reproduces the pre-fleet backend exactly.
    pub fn homogeneous(n: usize) -> Self {
        FleetConfig {
            devices: (0..n.max(1)).map(|_| DeviceSpec::c1060()).collect(),
            policy: PolicyKind::RoundRobin,
            power_cap_w: None,
        }
    }

    /// `n` devices cycling through three C1060 derivatives: the baseline
    /// card, a half-width low-power part, and a wide high-power part.
    /// The heterogeneity is what separates the four policies in the
    /// `ewc fleet` comparison.
    pub fn heterogeneous(n: usize) -> Self {
        let presets = [
            DeviceSpec::c1060(),
            DeviceSpec::scaled("c1060-half", 0.5, 0.6, 0.55),
            DeviceSpec::scaled("c1060-wide", 1.5, 1.4, 1.6),
        ];
        FleetConfig {
            devices: (0..n.max(1))
                .map(|d| {
                    let mut spec = presets[d % presets.len()].clone();
                    spec.name = format!("{}#{d}", spec.name);
                    spec
                })
                .collect(),
            policy: PolicyKind::RoundRobin,
            power_cap_w: None,
        }
    }

    /// Replace the placement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Set the fleet-level power cap, watts.
    pub fn with_power_cap(mut self, watts: f64) -> Self {
        self.power_cap_w = Some(watts);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_spec_derives_from_the_c1060_preset() {
        let half = DeviceSpec::scaled("half", 0.5, 0.6, 0.55);
        let base = GpuConfig::tesla_c1060();
        assert_eq!(half.gpu.num_sms, base.num_sms / 2);
        assert!((half.gpu.dram_bandwidth - base.dram_bandwidth * 0.6).abs() < 1.0);
        assert_eq!(half.gpu.clock_hz, base.clock_hz);
        assert!(half.gpu.validate().is_ok());
    }

    #[test]
    fn power_proxy_spans_idle_to_tdp() {
        let spec = DeviceSpec::c1060();
        assert_eq!(spec.capacity(), SATURATION_CTXS);
        assert!((spec.est_power_w(0) - CARD_IDLE_W).abs() < 1e-9);
        let busy = spec.est_power_w(SATURATION_CTXS);
        assert!((busy - (CARD_IDLE_W + SM_ACTIVE_W * 30.0)).abs() < 1e-9);
        // Past saturation the proxy clamps at the ceiling.
        assert_eq!(
            spec.est_power_w(SATURATION_CTXS + 4).to_bits(),
            busy.to_bits()
        );
    }

    #[test]
    fn policy_labels_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn heterogeneous_fleet_validates_and_differs() {
        let fleet = FleetConfig::heterogeneous(4);
        assert_eq!(fleet.devices.len(), 4);
        for spec in &fleet.devices {
            assert!(spec.gpu.validate().is_ok(), "{}", spec.name);
        }
        assert_ne!(fleet.devices[0].gpu.num_sms, fleet.devices[1].gpu.num_sms);
    }
}
