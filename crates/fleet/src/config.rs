//! Fleet description: per-device specs and the fleet-level knobs.

use ewc_energy::PowerStateTable;
use ewc_gpu::GpuConfig;

use crate::policy::{FragAware, LeastLoaded, PlacementPolicy, PowerAware, RoundRobin};

/// Idle (static) draw of one card at the fleet's power-proxy scale 1.0,
/// watts. Matches the ~40 W a Tesla C1060 burns with no SM active.
pub const CARD_IDLE_W: f64 = 40.0;

/// Dynamic draw per active SM at full utilization, watts. With the
/// C1060's 30 SMs this lands the busy card near its ~190 W TDP
/// (40 + 30 × 5).
pub const SM_ACTIVE_W: f64 = 5.0;

/// Live contexts at which the placement power proxy treats a device as
/// fully utilized. A C1060 runs at most 8 blocks per SM, and the
/// backend's consolidator similarly saturates a card within a handful of
/// co-resident contexts.
pub const SATURATION_CTXS: u32 = 8;

/// One device in the fleet: the simulated card plus the scaling knobs
/// the placement layer scores with.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable label (shows up in telemetry and the CLI tables).
    pub name: String,
    /// The simulated card itself. Heterogeneity enters here: SM count,
    /// DRAM bandwidth, clock — all derived from the C1060 preset.
    pub gpu: GpuConfig,
    /// Multiplier on the device's power curve relative to the baseline
    /// C1060 (1.0). A die-shrunk part of the same architecture would sit
    /// below 1.0; a wider card above it.
    pub power_scale: f64,
    /// The card's power-state ladder. The default single-state table
    /// (P0 at [`CARD_IDLE_W`]) makes every accounting path bit-compatible
    /// with the pre-DVFS fleet; a multi-level table lets the power cap
    /// throttle this device instead of only redirecting placement.
    pub states: PowerStateTable,
}

impl DeviceSpec {
    /// The baseline device: an unscaled Tesla C1060.
    pub fn c1060() -> Self {
        DeviceSpec {
            name: "c1060".to_string(),
            gpu: GpuConfig::tesla_c1060(),
            power_scale: 1.0,
            states: PowerStateTable::single(CARD_IDLE_W),
        }
    }

    /// A C1060 derivative: `sm_scale` multiplies the SM count (minimum
    /// one SM), `bw_scale` the DRAM bandwidth, `power_scale` the power
    /// curve. All other timing parameters stay at the preset's values so
    /// heterogeneous fleets remain comparable.
    pub fn scaled(name: &str, sm_scale: f64, bw_scale: f64, power_scale: f64) -> Self {
        let base = GpuConfig::tesla_c1060();
        let gpu = GpuConfig {
            num_sms: ((f64::from(base.num_sms) * sm_scale) as u32).max(1),
            dram_bandwidth: base.dram_bandwidth * bw_scale,
            ..base
        };
        DeviceSpec {
            name: name.to_string(),
            gpu,
            power_scale,
            states: PowerStateTable::single(CARD_IDLE_W),
        }
    }

    /// Replace the card's power-state ladder (e.g.
    /// [`PowerStateTable::dvfs`] to let the fleet power cap throttle the
    /// card through its operating points).
    pub fn with_states(mut self, states: PowerStateTable) -> Self {
        self.states = states;
        self
    }

    /// Live contexts at which the placement proxy treats this card as
    /// saturated: [`SATURATION_CTXS`] scaled by the SM count relative to
    /// the baseline C1060 (minimum one).
    pub fn capacity(&self) -> u32 {
        let base_sms = GpuConfig::tesla_c1060().num_sms;
        ((SATURATION_CTXS * self.gpu.num_sms + base_sms / 2) / base_sms).max(1)
    }

    /// Placement-layer power proxy: estimated draw of this card with
    /// `ctxs` live contexts, watts. Linear in utilization between the
    /// idle floor and the all-SMs-busy ceiling — the same shape the
    /// trained per-device power model has, collapsed to one number so
    /// policies can score a binding without a kernel spec in hand.
    /// Evaluated at the ladder's top state; see
    /// [`DeviceSpec::est_power_in_state_w`].
    pub fn est_power_w(&self, ctxs: u32) -> f64 {
        self.est_power_in_state_w(ctxs, self.states.top())
    }

    /// The power proxy with the card held at state `level`: the state's
    /// static floor plus a per-SM dynamic term scaled by the state's
    /// `f·V²`. At the top of the default single-state table this is
    /// bit-identical to the pre-DVFS proxy (`CARD_IDLE_W` floor,
    /// [`SM_ACTIVE_W`] per SM). An unknown level falls back to the top
    /// state.
    pub fn est_power_in_state_w(&self, ctxs: u32, level: usize) -> f64 {
        let state = self
            .states
            .get(level)
            .unwrap_or(&self.states.states[self.states.top()]);
        let cap = self.capacity();
        let u = f64::from(ctxs.min(cap)) / f64::from(cap);
        self.power_scale
            * (state.static_w
                + (SM_ACTIVE_W * state.dynamic_scale()) * f64::from(self.gpu.num_sms) * u)
    }
}

/// Which placement policy the fleet governor runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// First-touch round robin over all devices — bit-compatible with
    /// the pre-fleet backend.
    RoundRobin,
    /// Fewest live contexts wins; ties break to the lowest index.
    LeastLoaded,
    /// Lowest marginal power draw wins (racing-to-idle: keep extra
    /// cards near their idle floor).
    PowerAware,
    /// Smallest fragmentation-gradient increase wins — packs contexts
    /// onto already-busy cards (à la arXiv 2412.17484).
    FragAware,
}

impl PolicyKind {
    /// Every policy, in comparison order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::RoundRobin,
        PolicyKind::LeastLoaded,
        PolicyKind::PowerAware,
        PolicyKind::FragAware,
    ];

    /// Stable CLI / telemetry label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::LeastLoaded => "least-loaded",
            PolicyKind::PowerAware => "power-aware",
            PolicyKind::FragAware => "frag-aware",
        }
    }

    /// Parse a CLI label back into a kind.
    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn PlacementPolicy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin::default()),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded),
            PolicyKind::PowerAware => Box::new(PowerAware),
            PolicyKind::FragAware => Box::new(FragAware),
        }
    }
}

/// The whole fleet: devices, the placement policy, and an optional
/// fleet-level power cap.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Devices, indexed as `gpu0..gpuN-1`.
    pub devices: Vec<DeviceSpec>,
    /// Context→device placement strategy.
    pub policy: PolicyKind,
    /// Optional fleet-level power cap, watts, on the placement power
    /// proxy. A binding whose projected fleet draw exceeds the cap is
    /// redirected to the device minimizing the projected draw (the cap
    /// redirects placement — it never refuses admission).
    pub power_cap_w: Option<f64>,
}

impl FleetConfig {
    /// `n` identical baseline C1060s under round robin — the
    /// configuration that reproduces the pre-fleet backend exactly.
    pub fn homogeneous(n: usize) -> Self {
        FleetConfig {
            devices: (0..n.max(1)).map(|_| DeviceSpec::c1060()).collect(),
            policy: PolicyKind::RoundRobin,
            power_cap_w: None,
        }
    }

    /// `n` devices cycling through three C1060 derivatives: the baseline
    /// card, a half-width low-power part, and a wide high-power part.
    /// The heterogeneity is what separates the four policies in the
    /// `ewc fleet` comparison.
    pub fn heterogeneous(n: usize) -> Self {
        let presets = [
            DeviceSpec::c1060(),
            DeviceSpec::scaled("c1060-half", 0.5, 0.6, 0.55),
            DeviceSpec::scaled("c1060-wide", 1.5, 1.4, 1.6),
        ];
        FleetConfig {
            devices: (0..n.max(1))
                .map(|d| {
                    let mut spec = presets[d % presets.len()].clone();
                    spec.name = format!("{}#{d}", spec.name);
                    spec
                })
                .collect(),
            policy: PolicyKind::RoundRobin,
            power_cap_w: None,
        }
    }

    /// Replace the placement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Give every device the DVFS ladder (anchored at [`CARD_IDLE_W`])
    /// so the power cap can throttle operating points before it falls
    /// back to redirecting placement.
    pub fn with_dvfs(mut self) -> Self {
        for spec in &mut self.devices {
            spec.states = PowerStateTable::dvfs(CARD_IDLE_W);
        }
        self
    }

    /// Set the fleet-level power cap, watts.
    pub fn with_power_cap(mut self, watts: f64) -> Self {
        self.power_cap_w = Some(watts);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_spec_derives_from_the_c1060_preset() {
        let half = DeviceSpec::scaled("half", 0.5, 0.6, 0.55);
        let base = GpuConfig::tesla_c1060();
        assert_eq!(half.gpu.num_sms, base.num_sms / 2);
        assert!((half.gpu.dram_bandwidth - base.dram_bandwidth * 0.6).abs() < 1.0);
        assert_eq!(half.gpu.clock_hz, base.clock_hz);
        assert!(half.gpu.validate().is_ok());
    }

    #[test]
    fn power_proxy_spans_idle_to_tdp() {
        let spec = DeviceSpec::c1060();
        assert_eq!(spec.capacity(), SATURATION_CTXS);
        assert!((spec.est_power_w(0) - CARD_IDLE_W).abs() < 1e-9);
        let busy = spec.est_power_w(SATURATION_CTXS);
        assert!((busy - (CARD_IDLE_W + SM_ACTIVE_W * 30.0)).abs() < 1e-9);
        // Past saturation the proxy clamps at the ceiling.
        assert_eq!(
            spec.est_power_w(SATURATION_CTXS + 4).to_bits(),
            busy.to_bits()
        );
    }

    #[test]
    fn state_table_proxy_matches_the_flat_proxy_at_top() {
        // The proxy is now derived from the state table; at the default
        // single-state table's top this must be the pre-DVFS arithmetic
        // bit-for-bit.
        let spec = DeviceSpec::c1060();
        for ctxs in 0..=SATURATION_CTXS {
            let cap = spec.capacity();
            let u = f64::from(ctxs.min(cap)) / f64::from(cap);
            let flat =
                spec.power_scale * (CARD_IDLE_W + SM_ACTIVE_W * f64::from(spec.gpu.num_sms) * u);
            assert_eq!(spec.est_power_w(ctxs).to_bits(), flat.to_bits());
        }
    }

    #[test]
    fn dvfs_table_throttles_the_proxy() {
        let spec = DeviceSpec::c1060().with_states(PowerStateTable::dvfs(CARD_IDLE_W));
        let top = spec.states.top();
        let busy_top = spec.est_power_in_state_w(SATURATION_CTXS, top);
        // The deepest operating point draws markedly less at equal load.
        let (deepest, _) = spec
            .states
            .operating_points()
            .next()
            .expect("dvfs ladder has operating points");
        let busy_deep = spec.est_power_in_state_w(SATURATION_CTXS, deepest);
        assert!(
            busy_deep < busy_top * 0.5,
            "p2 proxy {busy_deep:.1} W vs p0 {busy_top:.1} W"
        );
        // Unknown levels fall back to the top state.
        assert_eq!(
            spec.est_power_in_state_w(3, 99).to_bits(),
            spec.est_power_in_state_w(3, top).to_bits()
        );
    }

    #[test]
    fn policy_labels_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("nope"), None);
    }

    #[test]
    fn heterogeneous_fleet_validates_and_differs() {
        let fleet = FleetConfig::heterogeneous(4);
        assert_eq!(fleet.devices.len(), 4);
        for spec in &fleet.devices {
            assert!(spec.gpu.validate().is_ok(), "{}", spec.name);
        }
        assert_ne!(fleet.devices[0].gpu.num_sms, fleet.devices[1].gpu.num_sms);
    }
}
