//! The fleet governor: owns the placement policy, the per-device
//! circuit breakers, live-load accounting, and the optional fleet-level
//! power cap.
//!
//! The backend delegates every context→device question here:
//!
//! - first touch of a context calls [`FleetGovernor::place`], which runs
//!   the policy, then applies two deterministic post-filters — avoid a
//!   tripped device when a healthy one exists, and redirect a binding
//!   whose projected fleet draw would exceed the power cap;
//! - a reaped (dead) context calls [`FleetGovernor::release`], so load
//!   counts track *live* contexts instead of drifting monotonically;
//! - launch outcomes call [`FleetGovernor::record_fault`] /
//!   [`record_success`](FleetGovernor::record_success) on the device
//!   that served the group, so one sick card trips alone;
//! - when a group's device has tripped, [`FleetGovernor::healthy_target`]
//!   nominates the migration destination (or `None` → CPU lifeboat).
//!
//! Every placement and migration is recorded as a [`PlacementRecord`],
//! the byte-for-byte audit trail the determinism tests replay.

use std::collections::HashMap;

use ewc_exec::VirtualClock;

use crate::breaker::{CircuitBreaker, ResiliencePolicy};
use crate::config::{DeviceSpec, FleetConfig, PolicyKind};
use crate::policy::{DeviceView, PlacementPolicy};

/// Why a context landed on its device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementReason {
    /// The policy's first choice.
    Policy,
    /// Redirected off the policy's pick because that device's breaker
    /// was open.
    Health,
    /// Redirected because the policy's pick would blow the fleet-level
    /// power cap.
    PowerCap,
    /// Re-placed by drain/migrate after the bound device tripped.
    Migrated,
    /// Redirected off the policy's pick because that device's admission
    /// queue is saturated — an overloaded-but-healthy device sheds new
    /// contexts before its breaker ever trips.
    Overload,
}

impl PlacementReason {
    /// Stable label for audit records.
    pub fn label(self) -> &'static str {
        match self {
            PlacementReason::Policy => "policy",
            PlacementReason::Health => "health",
            PlacementReason::PowerCap => "power-cap",
            PlacementReason::Migrated => "migrated",
            PlacementReason::Overload => "overload",
        }
    }
}

/// One context→device binding event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementRecord {
    /// The context that was bound.
    pub ctx: u64,
    /// The device it landed on.
    pub device: u32,
    /// Why it landed there.
    pub reason: PlacementReason,
}

/// One power-cap throttle event: a device moved between operating
/// points of its state ladder. The backend replays these onto the
/// simulated devices and audits them as `state_changed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateChangeRecord {
    /// The throttled device.
    pub device: u32,
    /// Level left (index into the device's state table).
    pub from: usize,
    /// Level entered.
    pub to: usize,
}

/// Fleet-wide placement and health state.
pub struct FleetGovernor {
    specs: Vec<DeviceSpec>,
    policy_kind: PolicyKind,
    policy: Box<dyn PlacementPolicy>,
    power_cap_w: Option<f64>,
    breakers: Vec<CircuitBreaker>,
    live: Vec<u32>,
    bindings: HashMap<u64, usize>,
    placements: Vec<PlacementRecord>,
    cap_redirects: u64,
    migrations: u64,
    /// Current operating point per device (index into its state table),
    /// initialised to each ladder's top. The power proxy and cap filter
    /// score at this level.
    dvfs_level: Vec<usize>,
    state_changes: Vec<StateChangeRecord>,
    throttles: u64,
}

impl FleetGovernor {
    /// Build a governor for `cfg`'s devices, with one breaker per device
    /// configured from `resilience`.
    pub fn new(cfg: &FleetConfig, resilience: &ResiliencePolicy) -> Self {
        let n = cfg.devices.len().max(1);
        let specs = if cfg.devices.is_empty() {
            vec![DeviceSpec::c1060()]
        } else {
            cfg.devices.clone()
        };
        let dvfs_level = specs.iter().map(|s| s.states.top()).collect();
        FleetGovernor {
            specs,
            policy_kind: cfg.policy,
            policy: cfg.policy.build(),
            power_cap_w: cfg.power_cap_w,
            breakers: (0..n).map(|_| CircuitBreaker::new(resilience)).collect(),
            live: vec![0; n],
            bindings: HashMap::new(),
            placements: Vec::new(),
            cap_redirects: 0,
            migrations: 0,
            dvfs_level,
            state_changes: Vec::new(),
            throttles: 0,
        }
    }

    /// Number of devices in the fleet.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Fleets always have at least one device.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The spec of device `d`.
    pub fn spec(&self, d: usize) -> &DeviceSpec {
        &self.specs[d]
    }

    /// Label of the active placement policy.
    pub fn policy_label(&self) -> &'static str {
        self.policy_kind.label()
    }

    /// The device `ctx` is bound to, if it has been placed.
    pub fn binding(&self, ctx: u64) -> Option<usize> {
        self.bindings.get(&ctx).copied()
    }

    /// Live contexts currently bound to device `d`.
    pub fn live(&self, d: usize) -> u32 {
        self.live[d]
    }

    fn views(&self, at: &VirtualClock) -> Vec<DeviceView> {
        self.specs
            .iter()
            .enumerate()
            .map(|(index, spec)| DeviceView {
                index,
                spec: spec.clone(),
                live: self.live[index],
                healthy: !self.breakers[index].is_open(at),
            })
            .collect()
    }

    /// Projected fleet draw (placement power proxy, watts) with one
    /// extra context on `extra_on`, each device scored at its current
    /// operating point. With default single-state tables every device
    /// sits at its only state, so this is the pre-DVFS projection
    /// bit-for-bit.
    pub fn projected_power_w(&self, extra_on: Option<usize>) -> f64 {
        self.specs
            .iter()
            .enumerate()
            .map(|(d, spec)| {
                spec.est_power_in_state_w(
                    self.live[d] + u32::from(extra_on == Some(d)),
                    self.dvfs_level[d],
                )
            })
            .sum()
    }

    /// Bind a new context: run the policy, then the health and power-cap
    /// post-filters. Records and returns the placement.
    pub fn place(&mut self, ctx: u64, at: &VirtualClock) -> PlacementRecord {
        self.place_filtered(ctx, at, None)
    }

    /// [`FleetGovernor::place`] with an overload post-filter: when the
    /// policy's (health-filtered) pick is marked saturated in
    /// `saturated` and a healthy unsaturated device exists, the context
    /// is redirected there — the admission controller's way of letting
    /// an overloaded-but-healthy device shed new work before its
    /// breaker trips. The power-cap filter still runs last.
    pub fn place_avoiding(
        &mut self,
        ctx: u64,
        at: &VirtualClock,
        saturated: &[bool],
    ) -> PlacementRecord {
        self.place_filtered(ctx, at, Some(saturated))
    }

    fn place_filtered(
        &mut self,
        ctx: u64,
        at: &VirtualClock,
        saturated: Option<&[bool]>,
    ) -> PlacementRecord {
        let views = self.views(at);
        let mut device = self.policy.place(&views).min(self.specs.len() - 1);
        let mut reason = PlacementReason::Policy;
        if !views[device].healthy {
            if let Some(alt) = self.healthy_target(device, at) {
                device = alt;
                reason = PlacementReason::Health;
            }
        }
        if let Some(sat) = saturated {
            if sat.get(device).copied().unwrap_or(false) {
                let alt = (0..self.specs.len())
                    .filter(|&d| {
                        d != device && views[d].healthy && !sat.get(d).copied().unwrap_or(false)
                    })
                    .min_by_key(|&d| (self.live[d], d));
                if let Some(alt) = alt {
                    device = alt;
                    reason = PlacementReason::Overload;
                }
            }
        }
        if let Some(cap) = self.power_cap_w {
            if self.projected_power_w(Some(device)) > cap {
                // Throttle first: drop the picked device to the fastest
                // operating point whose projection fits under the cap.
                // Only multi-level ladders can throttle — the default
                // single-state fleet falls through to the redirect, the
                // pre-DVFS behaviour bit-for-bit.
                if !self.throttle_to_fit(device, cap) {
                    let best = (0..self.specs.len())
                        .min_by(|&a, &b| {
                            self.projected_power_w(Some(a))
                                .total_cmp(&self.projected_power_w(Some(b)))
                        })
                        .unwrap_or(device);
                    if best != device {
                        device = best;
                        reason = PlacementReason::PowerCap;
                        self.cap_redirects += 1;
                    }
                }
            }
        }
        self.live[device] += 1;
        self.bindings.insert(ctx, device);
        let rec = PlacementRecord {
            ctx,
            device: device as u32,
            reason,
        };
        self.placements.push(rec.clone());
        rec
    }

    /// Move `device` to the fastest operating point of its ladder whose
    /// projected fleet draw (with the extra context on `device`) fits
    /// under `cap_w`. Returns `false` — recording nothing — when no
    /// other operating point fits (including the single-state default,
    /// which has nowhere to go).
    fn throttle_to_fit(&mut self, device: usize, cap_w: f64) -> bool {
        let current = self.dvfs_level[device];
        let levels: Vec<usize> = self.specs[device]
            .states
            .operating_points()
            .map(|(l, _)| l)
            .collect();
        let mut best: Option<(usize, f64)> = None;
        for level in levels {
            if level == current {
                continue;
            }
            self.dvfs_level[device] = level;
            let fits = self.projected_power_w(Some(device)) <= cap_w;
            let f = self.specs[device].states.states[level].freq_scale;
            if fits && best.is_none_or(|(_, bf)| f > bf) {
                best = Some((level, f));
            }
        }
        self.dvfs_level[device] = current;
        match best {
            Some((level, _)) => {
                self.dvfs_level[device] = level;
                self.throttles += 1;
                self.state_changes.push(StateChangeRecord {
                    device: device as u32,
                    from: current,
                    to: level,
                });
                true
            }
            None => false,
        }
    }

    /// Current operating point of device `d` (index into its ladder).
    pub fn device_level(&self, d: usize) -> usize {
        self.dvfs_level[d]
    }

    /// Every power-cap throttle event, in occurrence order.
    pub fn state_changes(&self) -> &[StateChangeRecord] {
        &self.state_changes
    }

    /// Number of placements the power cap absorbed by throttling a
    /// device instead of redirecting the context.
    pub fn throttles(&self) -> u64 {
        self.throttles
    }

    /// Release a reaped context's binding so its device's live count no
    /// longer charges for it.
    pub fn release(&mut self, ctx: u64) {
        if let Some(d) = self.bindings.remove(&ctx) {
            self.live[d] = self.live[d].saturating_sub(1);
        }
    }

    /// Rebind `ctx` onto `to` (drain/migrate off a tripped device).
    pub fn rebind(&mut self, ctx: u64, to: usize) {
        if let Some(d) = self.bindings.insert(ctx, to) {
            self.live[d] = self.live[d].saturating_sub(1);
        }
        self.live[to] += 1;
        self.migrations += 1;
        self.placements.push(PlacementRecord {
            ctx,
            device: to as u32,
            reason: PlacementReason::Migrated,
        });
    }

    /// May device `d`'s GPU path be used now? (Side effects: an open
    /// breaker past its cooldown moves to half-open.)
    pub fn gpu_allowed(&mut self, d: usize, at: &VirtualClock) -> bool {
        self.breakers[d].gpu_allowed(at)
    }

    /// Record a transient fault on device `d`; `true` when it trips.
    pub fn record_fault(&mut self, d: usize, at: &VirtualClock) -> bool {
        self.breakers[d].record_fault(at)
    }

    /// Record a successful launch on device `d`.
    pub fn record_success(&mut self, d: usize) {
        self.breakers[d].record_success();
    }

    /// Whether device `d`'s breaker currently blocks its GPU path
    /// (side-effect-free).
    pub fn is_open(&self, d: usize, at: &VirtualClock) -> bool {
        self.breakers[d].is_open(at)
    }

    /// The least-loaded healthy device other than `from`, if any — the
    /// drain/migrate destination when `from` trips. `None` means the
    /// whole fleet is sick and the group falls back to the CPU.
    pub fn healthy_target(&self, from: usize, at: &VirtualClock) -> Option<usize> {
        (0..self.specs.len())
            .filter(|&d| d != from && !self.breakers[d].is_open(at))
            .min_by_key(|&d| (self.live[d], d))
    }

    /// Trip count of device `d`'s breaker.
    pub fn trips(&self, d: usize) -> u64 {
        self.breakers[d].trips()
    }

    /// Total trips across the fleet (the pre-fleet global stat).
    pub fn total_trips(&self) -> u64 {
        self.breakers.iter().map(CircuitBreaker::trips).sum()
    }

    /// Every placement and migration, in binding order.
    pub fn placements(&self) -> &[PlacementRecord] {
        &self.placements
    }

    /// Placements redirected by the power cap.
    pub fn cap_redirects(&self) -> u64 {
        self.cap_redirects
    }

    /// Contexts re-placed by drain/migrate.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor(cfg: FleetConfig) -> FleetGovernor {
        FleetGovernor::new(&cfg, &ResiliencePolicy::default())
    }

    #[test]
    fn round_robin_cycles_and_release_frees_load() {
        let clk = VirtualClock::new();
        let mut g = governor(FleetConfig::homogeneous(3));
        for ctx in 0..6u64 {
            let rec = g.place(ctx, &clk);
            assert_eq!(rec.device as usize, (ctx % 3) as usize);
            assert_eq!(rec.reason, PlacementReason::Policy);
        }
        assert_eq!(g.live(0), 2);
        g.release(0);
        g.release(3);
        assert_eq!(g.live(0), 0);
        // Round robin keeps cycling (bit-compatible counter) even though
        // device 0 is now the emptiest.
        assert_eq!(g.place(6, &clk).device, 0);
        assert_eq!(g.place(7, &clk).device, 1);
    }

    #[test]
    fn least_loaded_rebinds_into_released_slots() {
        let clk = VirtualClock::new();
        let mut g = governor(FleetConfig::homogeneous(2).with_policy(PolicyKind::LeastLoaded));
        assert_eq!(g.place(1, &clk).device, 0);
        assert_eq!(g.place(2, &clk).device, 1);
        assert_eq!(g.place(3, &clk).device, 0);
        // Reap both device-0 contexts: the next two placements refill it
        // instead of skewing on a monotonic counter.
        g.release(1);
        g.release(3);
        assert_eq!(g.place(4, &clk).device, 0);
        assert_eq!(g.place(5, &clk).device, 0);
    }

    #[test]
    fn power_cap_redirects_to_the_cheapest_projection() {
        let clk = VirtualClock::new();
        // Idle draw alone: c1060 40 W + half 22 W + wide 64 W = 126 W.
        // Cap just above idle: any binding on the wide card blows it, so
        // placements herd onto the cheapest marginal device.
        let fleet = FleetConfig::heterogeneous(3)
            .with_policy(PolicyKind::RoundRobin)
            .with_power_cap(140.0);
        let mut g = governor(fleet);
        let recs: Vec<_> = (0..3u64).map(|ctx| g.place(ctx, &clk)).collect();
        assert!(
            recs.iter().any(|r| r.reason == PlacementReason::PowerCap),
            "{recs:?}"
        );
        assert!(g.cap_redirects() > 0);
        assert!(
            recs.iter().all(|r| r.device != 2),
            "the wide card is unaffordable under the cap: {recs:?}"
        );
    }

    #[test]
    fn power_cap_throttles_dvfs_devices_before_redirecting() {
        let clk = VirtualClock::new();
        // Two DVFS-capable c1060s idle at 80 W total; one context on a
        // P0 card projects 58.75 + 40 = 98.75 W. A 95 W cap forces the
        // pick down the ladder instead of bouncing the context to the
        // other card.
        let fleet = FleetConfig::homogeneous(2).with_dvfs().with_power_cap(95.0);
        let mut g = governor(fleet);
        let top = g.spec(0).states.top();
        assert_eq!(g.device_level(0), top);
        let rec = g.place(1, &clk);
        // The binding stayed on the policy's pick…
        assert_eq!((rec.device, rec.reason), (0, PlacementReason::Policy));
        // …but the card was throttled to make it affordable.
        assert_ne!(g.device_level(0), top, "cap must throttle gpu0");
        assert_eq!(g.throttles(), 1);
        assert_eq!(g.cap_redirects(), 0, "throttle absorbed the cap hit");
        let changes = g.state_changes();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].device, 0);
        assert_eq!(changes[0].from, top);
        assert!(g.projected_power_w(None) <= 95.0);
    }

    #[test]
    fn single_state_fleet_still_redirects_under_the_cap() {
        let clk = VirtualClock::new();
        // Same cap, no DVFS tables: the only lever is redirect, and the
        // pre-DVFS assertions hold unchanged.
        let fleet = FleetConfig::heterogeneous(3)
            .with_policy(PolicyKind::RoundRobin)
            .with_power_cap(140.0);
        let mut g = governor(fleet);
        let recs: Vec<_> = (0..3u64).map(|ctx| g.place(ctx, &clk)).collect();
        assert!(recs.iter().any(|r| r.reason == PlacementReason::PowerCap));
        assert_eq!(g.throttles(), 0);
        assert!(g.state_changes().is_empty());
    }

    #[test]
    fn tripped_device_is_avoided_and_migration_rebinds() {
        let clk = VirtualClock::new();
        let policy = ResiliencePolicy {
            breaker_threshold: 1,
            breaker_cooldown_s: 1e6,
            ..ResiliencePolicy::default()
        };
        let mut g = FleetGovernor::new(&FleetConfig::homogeneous(2), &policy);
        assert_eq!(g.place(1, &clk).device, 0);
        assert!(g.record_fault(0, &clk), "threshold 1 trips immediately");
        assert!(!g.gpu_allowed(0, &clk));
        assert!(g.gpu_allowed(1, &clk), "healthy device keeps serving");
        // Round robin would hand ctx 3 to device 0; the governor
        // redirects it to the healthy card instead.
        assert_eq!(g.place(2, &clk).device, 1);
        let rec = g.place(3, &clk);
        assert_eq!((rec.device, rec.reason), (1, PlacementReason::Health));
        // The bound context drains to the healthy card.
        assert_eq!(g.healthy_target(0, &clk), Some(1));
        g.rebind(1, 1);
        assert_eq!(g.binding(1), Some(1));
        assert_eq!((g.live(0), g.live(1)), (0, 3));
        assert_eq!(g.migrations(), 1);
        assert_eq!(g.total_trips(), 1);
        assert_eq!(
            g.placements().last().map(|r| r.reason),
            Some(PlacementReason::Migrated)
        );
    }

    #[test]
    fn saturated_device_sheds_new_contexts_before_tripping() {
        let clk = VirtualClock::new();
        let mut g = governor(FleetConfig::homogeneous(2));
        // Round robin wants device 0, but its admission queue is full:
        // the placement redirects to the unsaturated card.
        let rec = g.place_avoiding(1, &clk, &[true, false]);
        assert_eq!((rec.device, rec.reason), (1, PlacementReason::Overload));
        // Everything saturated: the policy pick stands (shedding then
        // happens at admission, not by bouncing placements around).
        let rec = g.place_avoiding(2, &clk, &[true, true]);
        assert_eq!(rec.reason, PlacementReason::Policy);
        // Nothing saturated: bit-compatible with plain place().
        let rec = g.place_avoiding(3, &clk, &[false, false]);
        assert_eq!(rec.reason, PlacementReason::Policy);
    }

    #[test]
    fn whole_fleet_sick_means_no_migration_target() {
        let clk = VirtualClock::new();
        let policy = ResiliencePolicy {
            breaker_threshold: 1,
            breaker_cooldown_s: 1e6,
            ..ResiliencePolicy::default()
        };
        let mut g = FleetGovernor::new(&FleetConfig::homogeneous(2), &policy);
        g.record_fault(0, &clk);
        g.record_fault(1, &clk);
        assert_eq!(g.healthy_target(0, &clk), None);
    }
}
