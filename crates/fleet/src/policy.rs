//! Placement policies: deterministic context→device binding strategies.
//!
//! Each policy sees the same immutable snapshot of the fleet
//! ([`DeviceView`] per device) and returns a device index. All four are
//! pure functions of the snapshot (plus, for [`RoundRobin`], an internal
//! counter), so same-seed runs place identically. Float scores break
//! ties with `total_cmp` and then the lowest device index — no ambient
//! randomness anywhere.

use crate::config::{DeviceSpec, SM_ACTIVE_W};

/// One device as the placement layer sees it at binding time.
#[derive(Debug, Clone)]
pub struct DeviceView {
    /// Device index (`gpu{index}` in telemetry).
    pub index: usize,
    /// The device's spec (SM count, bandwidth, power scaling).
    pub spec: DeviceSpec,
    /// Contexts currently bound to the device. Reaped contexts are
    /// released, so this reflects *live* load — not the lifetime
    /// first-touch count the pre-fleet round-robin counter drifted on.
    pub live: u32,
    /// `false` while the device's circuit breaker holds its GPU path
    /// open (tripped).
    pub healthy: bool,
}

impl DeviceView {
    /// Marginal power of binding one more context here, watts. Past the
    /// card's capacity the marginal cost jumps to the full dynamic range
    /// — overloading a saturated card is the most expensive move — so
    /// [`PowerAware`] fills the cheapest card first but spills before
    /// oversubscribing it.
    pub fn marginal_power_w(&self) -> f64 {
        let dynamic = self.spec.power_scale * SM_ACTIVE_W * f64::from(self.spec.gpu.num_sms);
        if self.live >= self.spec.capacity() {
            dynamic
        } else {
            dynamic / f64::from(self.spec.capacity())
        }
    }

    /// Fragmentation-gradient of binding one more context here: the
    /// increase in SM-weighted `u·(1−u)` (u = live/capacity), the
    /// classic fragmentation potential that peaks at half-utilized
    /// devices. Concavity makes the busiest card the cheapest move, so
    /// minimizing the gradient *packs* contexts and keeps spare cards
    /// whole — the scoring shape of arXiv 2412.17484. Oversubscription
    /// gets a load-proportional penalty instead.
    pub fn frag_delta(&self) -> f64 {
        let cap = f64::from(self.spec.capacity());
        let live = f64::from(self.live);
        if live + 1.0 > cap {
            return 1.0 + live;
        }
        let frag = |l: f64| (l / cap) * (1.0 - l / cap);
        (frag(live + 1.0) - frag(live)) * f64::from(self.spec.gpu.num_sms)
    }
}

/// A deterministic context→device binding strategy.
pub trait PlacementPolicy: Send {
    /// Stable label for telemetry and audit records.
    fn name(&self) -> &'static str;
    /// Pick the device for a new context. `fleet` is never empty.
    fn place(&mut self, fleet: &[DeviceView]) -> usize;
}

/// Picks the device with the lowest float score; ties break to the
/// lowest index (strict `<` keeps the first minimum).
fn argmin_by(fleet: &[DeviceView], score: impl Fn(&DeviceView) -> f64) -> usize {
    let mut best = 0;
    let mut best_score = f64::INFINITY;
    for view in fleet {
        let s = score(view);
        if s.total_cmp(&best_score).is_lt() {
            best = view.index;
            best_score = s;
        }
    }
    best
}

/// First-touch round robin over all devices, healthy or not —
/// bit-compatible with the pre-fleet backend's `next_device` counter.
#[derive(Debug, Default)]
pub struct RoundRobin {
    counter: usize,
}

impl PlacementPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&mut self, fleet: &[DeviceView]) -> usize {
        let device = self.counter % fleet.len();
        self.counter += 1;
        device
    }
}

/// Fewest live contexts wins. Because the governor releases reaped
/// contexts, this is the skew-free replacement for the monotonic
/// round-robin counter on long-lived fleets.
#[derive(Debug, Default)]
pub struct LeastLoaded;

impl PlacementPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&mut self, fleet: &[DeviceView]) -> usize {
        argmin_by(fleet, |v| f64::from(v.live))
    }
}

/// Lowest marginal power draw wins: fill the cheapest card toward its
/// capacity while the rest of the fleet races to idle.
#[derive(Debug, Default)]
pub struct PowerAware;

impl PlacementPolicy for PowerAware {
    fn name(&self) -> &'static str {
        "power-aware"
    }

    fn place(&mut self, fleet: &[DeviceView]) -> usize {
        argmin_by(fleet, DeviceView::marginal_power_w)
    }
}

/// Smallest fragmentation-gradient increase wins: pack contexts onto
/// already-busy cards and keep spare capacity contiguous.
#[derive(Debug, Default)]
pub struct FragAware;

impl PlacementPolicy for FragAware {
    fn name(&self) -> &'static str {
        "frag-aware"
    }

    fn place(&mut self, fleet: &[DeviceView]) -> usize {
        argmin_by(fleet, DeviceView::frag_delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;

    fn views(live: &[u32]) -> Vec<DeviceView> {
        let fleet = FleetConfig::heterogeneous(live.len());
        live.iter()
            .enumerate()
            .map(|(index, &l)| DeviceView {
                index,
                spec: fleet.devices[index].clone(),
                live: l,
                healthy: true,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_regardless_of_load() {
        let mut rr = RoundRobin::default();
        let v = views(&[5, 0, 0]);
        assert_eq!(rr.place(&v), 0);
        assert_eq!(rr.place(&v), 1);
        assert_eq!(rr.place(&v), 2);
        assert_eq!(rr.place(&v), 0);
    }

    #[test]
    fn least_loaded_picks_min_live_then_lowest_index() {
        let mut ll = LeastLoaded;
        assert_eq!(ll.place(&views(&[2, 1, 1])), 1);
        assert_eq!(ll.place(&views(&[0, 0, 0])), 0);
    }

    #[test]
    fn power_aware_prefers_the_low_power_card() {
        // Device 1 in the heterogeneous preset is the half-width
        // low-power part: cheapest marginal watt when empty.
        let mut pa = PowerAware;
        assert_eq!(pa.place(&views(&[0, 0, 0])), 1);
    }

    #[test]
    fn power_aware_spills_once_the_cheap_card_saturates() {
        let v = views(&[0, 0, 0]);
        let cap = v[1].spec.capacity();
        let mut pa = PowerAware;
        assert_ne!(pa.place(&views(&[0, cap, 0])), 1);
    }

    #[test]
    fn frag_aware_packs_the_busiest_card() {
        let mut fa = FragAware;
        let empty = fa.place(&views(&[0, 0, 0]));
        // Wherever the first context lands, the second follows it.
        let mut live = [0u32, 0, 0];
        live[empty] = 1;
        assert_eq!(fa.place(&views(&live)), empty);
    }

    #[test]
    fn frag_aware_avoids_oversubscription() {
        let v = views(&[0, 0, 0]);
        let caps: Vec<u32> = v.iter().map(|d| d.spec.capacity()).collect();
        let mut fa = FragAware;
        let full = [caps[0], caps[1], 0];
        assert_eq!(fa.place(&views(&full)), 2, "only device 2 has room");
    }
}
