//! Retry policy and the per-device circuit breaker.
//!
//! The backend daemon owns the GPU on behalf of every user process, so a
//! device fault must never kill it. Instead, faults walk a
//! **degradation ladder**:
//!
//! 1. retry the launch with exponential backoff (transient faults —
//!    watchdog timeouts, DMA errors — often clear);
//! 2. abort consolidation and re-dispatch the group's members serially
//!    on the GPU (isolates a poisoned merge);
//! 3. fall back to the CPU for members the GPU persistently refuses
//!    (the paper's CPU path, reused as a lifeboat);
//! 4. fail the request back to its frontend (permanent errors only —
//!    an unschedulable kernel is wrong on every rung).
//!
//! A [`CircuitBreaker`] watches consecutive transient faults; when the
//! device looks sick it trips that device's GPU path for a cooldown,
//! then half-opens to probe with one group. The [`FleetGovernor`]
//! (`crate::governor`) owns one breaker *per device*, so a trip drains
//! the sick card instead of closing the whole fleet.
//!
//! Time enters through [`ewc_exec::VirtualClock`] handles rather than
//! hand-threaded `now_s` floats: the backend passes its host clock (or
//! a device's clock) and the breaker reads the instant itself.
//!
//! [`FleetGovernor`]: crate::FleetGovernor

use ewc_exec::VirtualClock;

/// Knobs for the backend's recovery behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePolicy {
    /// Per-request deadline on the simulated clock, seconds from the
    /// request's `launch` submission. When retry backoff would blow the
    /// deadline of any member, the backend stops retrying and escalates
    /// down the ladder instead. Infinite by default.
    pub request_deadline_s: f64,
    /// Maximum GPU retries per launch before escalating (on top of the
    /// initial attempt).
    pub max_gpu_retries: u32,
    /// Initial retry backoff, seconds; doubles per retry. The device
    /// idles (and burns idle power — retries are not energetically free)
    /// for the backoff interval.
    pub retry_backoff_s: f64,
    /// Consecutive transient faults that trip the circuit breaker.
    /// `0` disables the breaker entirely.
    pub breaker_threshold: u32,
    /// How long a tripped breaker keeps the GPU path closed before
    /// half-opening, seconds on the simulated clock.
    pub breaker_cooldown_s: f64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            request_deadline_s: f64::INFINITY,
            max_gpu_retries: 2,
            retry_backoff_s: 1e-3,
            breaker_threshold: 8,
            breaker_cooldown_s: 10.0,
        }
    }
}

/// State of one device's GPU-path circuit breaker.
///
/// Closed (healthy) → open (tripped: groups bound to this device migrate
/// to healthy devices, or the CPU when none exist) → half-open after the
/// cooldown (the next group probes the device; success closes the
/// breaker, another fault re-trips it immediately).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_s: f64,
    consecutive: u32,
    /// The GPU path is closed until this simulated time.
    /// `NEG_INFINITY` means the breaker has never tripped / is closed.
    open_until_s: f64,
    /// `true` while the first probe after a cooldown is outstanding.
    half_open: bool,
    trips: u64,
}

impl CircuitBreaker {
    /// Build from a policy.
    pub fn new(policy: &ResiliencePolicy) -> Self {
        CircuitBreaker {
            threshold: policy.breaker_threshold,
            cooldown_s: policy.breaker_cooldown_s,
            consecutive: 0,
            open_until_s: f64::NEG_INFINITY,
            half_open: false,
            trips: 0,
        }
    }

    /// May the GPU path be used at `at`'s current instant? Passing the
    /// cooldown boundary moves an open breaker to half-open (the caller's
    /// next launch is the probe).
    pub fn gpu_allowed(&mut self, at: &VirtualClock) -> bool {
        if self.threshold == 0 {
            return true;
        }
        if at.now_s() < self.open_until_s {
            return false;
        }
        if self.open_until_s > f64::NEG_INFINITY && !self.half_open {
            // Cooldown expired: first caller through probes the device.
            self.half_open = true;
        }
        true
    }

    /// Record one transient GPU fault at `at`'s current instant.
    /// Returns `true` when this fault trips (or re-trips) the breaker.
    pub fn record_fault(&mut self, at: &VirtualClock) -> bool {
        if self.threshold == 0 {
            return false;
        }
        self.consecutive += 1;
        if self.half_open || self.consecutive >= self.threshold {
            // A half-open probe failing re-trips immediately; a closed
            // breaker trips once the consecutive run reaches threshold.
            self.half_open = false;
            self.consecutive = 0;
            self.open_until_s = at.now_s() + self.cooldown_s;
            self.trips += 1;
            return true;
        }
        false
    }

    /// Record a successful GPU launch: closes a half-open breaker and
    /// resets the consecutive-fault run.
    pub fn record_success(&mut self) {
        self.consecutive = 0;
        self.half_open = false;
        self.open_until_s = f64::NEG_INFINITY;
    }

    /// How many times the breaker has tripped.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Whether the breaker currently blocks the GPU path at `at`'s
    /// instant (without side effects — use
    /// [`CircuitBreaker::gpu_allowed`] on the decision path).
    pub fn is_open(&self, at: &VirtualClock) -> bool {
        self.threshold != 0 && at.now_s() < self.open_until_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(threshold: u32, cooldown_s: f64) -> ResiliencePolicy {
        ResiliencePolicy {
            breaker_threshold: threshold,
            breaker_cooldown_s: cooldown_s,
            ..ResiliencePolicy::default()
        }
    }

    #[test]
    fn breaker_trips_after_threshold_consecutive_faults() {
        let clk = VirtualClock::new();
        let mut b = CircuitBreaker::new(&policy(3, 5.0));
        assert!(!b.record_fault(&clk));
        clk.advance_to(1.0);
        assert!(!b.record_fault(&clk));
        clk.advance_to(2.0);
        assert!(b.record_fault(&clk), "third consecutive fault trips");
        clk.advance_to(3.0);
        assert!(!b.gpu_allowed(&clk));
        clk.advance_to(6.9);
        assert!(!b.gpu_allowed(&clk));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_consecutive_run() {
        let clk = VirtualClock::new();
        let mut b = CircuitBreaker::new(&policy(2, 5.0));
        assert!(!b.record_fault(&clk));
        b.record_success();
        clk.advance_to(1.0);
        assert!(!b.record_fault(&clk), "run restarted after success");
        clk.advance_to(2.0);
        assert!(b.record_fault(&clk));
    }

    #[test]
    fn half_open_probe_failure_retrips_immediately() {
        let clk = VirtualClock::new();
        let mut b = CircuitBreaker::new(&policy(2, 5.0));
        b.record_fault(&clk);
        clk.advance_to(0.5);
        assert!(b.record_fault(&clk));
        // Cooldown passes → half-open, one probe allowed.
        clk.advance_to(6.0);
        assert!(b.gpu_allowed(&clk));
        // The probe faults: re-trip without needing a fresh run.
        clk.advance_to(6.1);
        assert!(b.record_fault(&clk));
        clk.advance_to(7.0);
        assert!(!b.gpu_allowed(&clk));
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let clk = VirtualClock::new();
        let mut b = CircuitBreaker::new(&policy(2, 5.0));
        b.record_fault(&clk);
        clk.advance_to(0.5);
        b.record_fault(&clk);
        clk.advance_to(6.0);
        assert!(b.gpu_allowed(&clk));
        b.record_success();
        clk.advance_to(6.1);
        assert!(b.gpu_allowed(&clk));
        clk.advance_to(100.0);
        assert!(!b.is_open(&clk));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let clk = VirtualClock::new();
        let mut b = CircuitBreaker::new(&policy(0, 5.0));
        for i in 0..100 {
            clk.advance_to(i as f64);
            assert!(!b.record_fault(&clk));
        }
        assert!(b.gpu_allowed(&clk));
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn default_policy_is_permissive() {
        let p = ResiliencePolicy::default();
        assert!(p.request_deadline_s.is_infinite());
        assert!(p.max_gpu_retries > 0);
        assert!(p.breaker_threshold > 0);
    }
}
