//! Shared-cache contention model.
//!
//! The paper attributes the CPU's poor consolidation behaviour partly to
//! "contention for shared resources such as L2 and L3 cache memories".
//! We model it with a piecewise-linear slowdown: while the aggregate
//! working set of co-running tasks fits in L3 there is no penalty; past
//! capacity the slowdown grows linearly with the overcommit ratio, capped
//! to keep the model sane for absurd inputs.

use crate::config::CpuConfig;

/// Computes the multiplicative slowdown from cache pressure.
#[derive(Debug, Clone)]
pub struct CacheModel {
    l3_bytes: f64,
    slope: f64,
    cap: f64,
}

impl CacheModel {
    /// Build from a CPU configuration.
    pub fn new(cfg: &CpuConfig) -> Self {
        CacheModel {
            l3_bytes: cfg.l3_bytes as f64,
            slope: cfg.cache_pressure_slope,
            cap: cfg.cache_pressure_cap,
        }
    }

    /// Slowdown factor (≥ 1) for a set of co-running tasks with the given
    /// aggregate working set.
    pub fn slowdown(&self, total_working_set: u64) -> f64 {
        let ratio = total_working_set as f64 / self.l3_bytes;
        if ratio <= 1.0 {
            1.0
        } else {
            (1.0 + self.slope * (ratio - 1.0)).min(self.cap)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CacheModel {
        CacheModel::new(&CpuConfig::tiny(2)) // 1 MiB L3, slope 0.5, cap 2.0
    }

    #[test]
    fn no_penalty_within_capacity() {
        let m = model();
        assert_eq!(m.slowdown(0), 1.0);
        assert_eq!(m.slowdown(1 << 20), 1.0);
    }

    #[test]
    fn linear_penalty_past_capacity() {
        let m = model();
        // 2 MiB = 2× capacity → 1 + 0.5 × 1 = 1.5.
        assert!((m.slowdown(2 << 20) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn penalty_saturates_at_cap() {
        let m = model();
        assert_eq!(m.slowdown(100 << 20), 2.0);
    }

    #[test]
    fn monotone_in_working_set() {
        let m = model();
        let mut last = 0.0;
        for ws in (0..50).map(|i| (i as u64) << 18) {
            let s = m.slowdown(ws);
            assert!(s >= last);
            last = s;
        }
    }
}
