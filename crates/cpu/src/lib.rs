//! # ewc-cpu — a multicore CPU simulator
//!
//! The baseline side of every experiment in the paper: a dual-socket
//! Xeon-E5520-class machine (8 cores) running OpenMP-parallelised
//! workload instances under an OS scheduler. The simulator reproduces the
//! effects the paper attributes to the CPU baseline:
//!
//! * **Fair-share scheduling with limited per-task parallelism** — each
//!   instance can use at most its `max_parallelism` cores (OpenMP
//!   scalability limit); the OS divides cores fairly among runnable
//!   instances (water-filling), so throughput saturates once the machine
//!   is full.
//! * **Time-slicing overhead** — when more runnable threads than cores
//!   exist, context switches eat a fraction of every quantum ("the CPU
//!   suffers from large context switch overhead due to operating system's
//!   time slicing", Section III).
//! * **Shared-cache contention** — the aggregate working set of
//!   co-running instances pressures the L3; past capacity every task
//!   slows down ("contention for shared resources such as L2 and L3
//!   cache memories").
//!
//! The engine is a fluid event-driven simulation (events are task
//! completions and arrivals), mirroring the GPU engine in `ewc-gpu`, so
//! both sides of the comparison share measurement semantics.
//!
//! ```
//! use ewc_cpu::{CpuConfig, CpuEngine, CpuPowerModel, CpuTask};
//!
//! let engine = CpuEngine::new(CpuConfig::xeon_e5520_x2());
//! // Nine 2-wide encryption instances on 8 cores: the machine saturates.
//! let tasks: Vec<CpuTask> =
//!     (0..9).map(|_| CpuTask::new("enc", 14.4, 2, 8 << 20)).collect();
//! let out = engine.run(&tasks);
//! assert!(out.makespan_s > 14.4 / 2.0, "oversubscription stretches the batch");
//! let energy = CpuPowerModel::xeon_e5520_x2().energy_j(&out);
//! assert!(energy > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The CPU baseline runs inside the same daemon as the GPU path; a
// panicking unwrap here would take the backend thread down with it.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod config;
pub mod engine;
pub mod power;
pub mod task;

pub use cache::CacheModel;
pub use config::CpuConfig;
pub use engine::{CpuEngine, CpuOutcome, UtilInterval};
pub use power::CpuPowerModel;
pub use task::CpuTask;
