//! CPU configuration.

/// Parameters of the simulated multicore machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuConfig {
    /// Number of physical cores.
    pub cores: u32,
    /// Core clock in Hz (informational; task work is expressed in
    /// core-seconds, so the clock only matters for derived metrics).
    pub clock_hz: f64,
    /// Total last-level cache in bytes (both sockets).
    pub l3_bytes: u64,
    /// OS scheduling quantum in seconds.
    pub quantum_s: f64,
    /// Cost of one context switch in seconds.
    pub context_switch_s: f64,
    /// Cache-contention sensitivity: fractional slowdown per unit of
    /// working-set overcommit beyond L3 capacity.
    pub cache_pressure_slope: f64,
    /// Upper bound on the cache-contention slowdown factor.
    pub cache_pressure_cap: f64,
}

impl CpuConfig {
    /// Dual-socket Intel Xeon E5520 preset (2 × 4 cores @ 2.26 GHz,
    /// 2 × 8 MB L3), the paper's host machine.
    pub fn xeon_e5520_x2() -> Self {
        CpuConfig {
            cores: 8,
            clock_hz: 2.26e9,
            l3_bytes: 16 << 20,
            quantum_s: 6e-3,
            context_switch_s: 12e-6,
            cache_pressure_slope: 1.1,
            cache_pressure_cap: 2.0,
        }
    }

    /// A small 2-core machine for hand-checkable unit tests.
    pub fn tiny(cores: u32) -> Self {
        CpuConfig {
            cores,
            clock_hz: 1.0e9,
            l3_bytes: 1 << 20,
            quantum_s: 10e-3,
            context_switch_s: 100e-6,
            cache_pressure_slope: 0.5,
            cache_pressure_cap: 2.0,
        }
    }

    /// Sanity checks for user-provided configurations.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be > 0".into());
        }
        if self.quantum_s <= 0.0 || self.context_switch_s < 0.0 {
            return Err("quantum must be > 0 and switch cost >= 0".into());
        }
        if self.cache_pressure_cap < 1.0 {
            return Err("cache pressure cap must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::xeon_e5520_x2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_matches_testbed() {
        let c = CpuConfig::xeon_e5520_x2();
        assert_eq!(c.cores, 8);
        assert_eq!(c.l3_bytes, 16 << 20);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = CpuConfig::tiny(2);
        c.cores = 0;
        assert!(c.validate().is_err());
        let mut c = CpuConfig::tiny(2);
        c.quantum_s = 0.0;
        assert!(c.validate().is_err());
        let mut c = CpuConfig::tiny(2);
        c.cache_pressure_cap = 0.5;
        assert!(c.validate().is_err());
    }
}
