//! CPU power model and energy integration.
//!
//! The paper measures CPU-side energy at the wall with the GPU physically
//! disconnected. We model system power as an idle floor plus a per-busy-
//! core increment, and integrate it over the engine's utilisation
//! profile. The idle floor belongs to the *system* (board, memory, disk,
//! fans), matching the paper's observation that those components draw
//! nearly constant power.

use crate::engine::CpuOutcome;

/// Linear CPU/system power model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuPowerModel {
    /// Whole-system idle power in watts (GPU disconnected).
    pub idle_w: f64,
    /// Additional watts per fully busy core.
    pub per_core_w: f64,
}

impl CpuPowerModel {
    /// Preset for the paper's host: a dual-socket Nehalem-era server.
    /// Idle around 155 W; each busy core adds ~12 W.
    pub fn xeon_e5520_x2() -> Self {
        CpuPowerModel {
            idle_w: 155.0,
            per_core_w: 12.0,
        }
    }

    /// Instantaneous power at a given busy-core count.
    pub fn power_w(&self, busy_cores: f64) -> f64 {
        self.idle_w + self.per_core_w * busy_cores
    }

    /// Energy in joules for a finished batch: piecewise integration of
    /// the utilisation profile.
    pub fn energy_j(&self, outcome: &CpuOutcome) -> f64 {
        outcome
            .intervals
            .iter()
            .map(|iv| self.power_w(iv.busy_cores) * iv.dur_s)
            .sum()
    }

    /// Average power over a finished batch (energy / makespan).
    pub fn avg_power_w(&self, outcome: &CpuOutcome) -> f64 {
        if outcome.makespan_s <= 0.0 {
            self.idle_w
        } else {
            self.energy_j(outcome) / outcome.makespan_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpuConfig;
    use crate::engine::CpuEngine;
    use crate::task::CpuTask;

    #[test]
    fn power_is_linear_in_busy_cores() {
        let m = CpuPowerModel::xeon_e5520_x2();
        assert_eq!(m.power_w(0.0), 155.0);
        assert!((m.power_w(8.0) - (155.0 + 96.0)).abs() < 1e-12);
    }

    #[test]
    fn energy_integrates_profile() {
        let mut cfg = CpuConfig::tiny(2);
        cfg.context_switch_s = 0.0;
        let e = CpuEngine::new(cfg);
        let m = CpuPowerModel {
            idle_w: 100.0,
            per_core_w: 10.0,
        };
        // One 1-wide 2 core-second task: 2 s at 1 busy core → 220 J.
        let out = e.run(&[CpuTask::new("t", 2.0, 1, 0)]);
        assert!((m.energy_j(&out) - 220.0).abs() < 1e-9);
        assert!((m.avg_power_w(&out) - 110.0).abs() < 1e-9);
    }

    #[test]
    fn busier_machine_costs_more_energy_per_second_but_finishes_faster() {
        let mut cfg = CpuConfig::tiny(4);
        cfg.context_switch_s = 0.0;
        let e = CpuEngine::new(cfg);
        let m = CpuPowerModel {
            idle_w: 100.0,
            per_core_w: 10.0,
        };
        let seq = e.run(&[CpuTask::new("t", 8.0, 1, 0)]);
        let par = e.run(&[CpuTask::new("t", 8.0, 4, 0)]);
        assert!(par.makespan_s < seq.makespan_s);
        // Same useful work; the parallel run avoids paying the idle
        // floor for as long, so it uses *less* total energy.
        assert!(m.energy_j(&par) < m.energy_j(&seq));
    }

    #[test]
    fn empty_outcome_reports_idle_power() {
        let m = CpuPowerModel::xeon_e5520_x2();
        let e = CpuEngine::new(CpuConfig::tiny(2));
        let out = e.run(&[]);
        assert_eq!(m.avg_power_w(&out), m.idle_w);
        assert_eq!(m.energy_j(&out), 0.0);
    }
}
