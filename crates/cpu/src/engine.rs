//! Fluid event-driven CPU engine.
//!
//! At every instant the OS divides the machine's cores among runnable
//! tasks by *water-filling*: each task is capped at its own
//! `max_parallelism`; spare capacity left by narrow tasks flows to wider
//! ones. When the total thread demand exceeds the core count, every
//! quantum pays a context-switch toll, and the aggregate working set
//! determines a cache-contention slowdown. Events are task arrivals and
//! completions; between events all rates are constant, so the simulation
//! advances in closed form exactly like the GPU engine.

use crate::cache::CacheModel;
use crate::config::CpuConfig;
use crate::task::CpuTask;

/// Core utilisation during one interval, for power integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilInterval {
    /// Interval start, seconds.
    pub start_s: f64,
    /// Interval duration, seconds.
    pub dur_s: f64,
    /// Busy cores (fractional, ≤ total cores).
    pub busy_cores: f64,
}

/// Result of simulating a batch of tasks.
#[derive(Debug, Clone)]
pub struct CpuOutcome {
    /// Time until the last task finished (the paper's "execution time of
    /// concurrently running multiple instances").
    pub makespan_s: f64,
    /// Per-task completion times, same order as submitted.
    pub finish_s: Vec<f64>,
    /// Per-task start-to-finish durations (completion − arrival).
    pub turnaround_s: Vec<f64>,
    /// Core-utilisation profile for energy integration.
    pub intervals: Vec<UtilInterval>,
}

/// The CPU simulator.
#[derive(Debug, Clone)]
pub struct CpuEngine {
    cfg: CpuConfig,
    cache: CacheModel,
}

#[derive(Debug)]
struct Running {
    idx: usize,
    remaining_core_s: f64,
    cap: f64,
    working_set: u64,
    alloc: f64,
}

impl CpuEngine {
    /// Create an engine.
    ///
    /// # Panics
    /// Panics on an invalid configuration (programmer error).
    pub fn new(cfg: CpuConfig) -> Self {
        cfg.validate().expect("invalid CPU configuration");
        let cache = CacheModel::new(&cfg);
        CpuEngine { cfg, cache }
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Simulate `tasks` to completion.
    pub fn run(&self, tasks: &[CpuTask]) -> CpuOutcome {
        let n = tasks.len();
        let mut finish = vec![0.0_f64; n];
        let mut intervals = Vec::new();
        if n == 0 {
            return CpuOutcome {
                makespan_s: 0.0,
                finish_s: finish,
                turnaround_s: Vec::new(),
                intervals,
            };
        }

        // Arrival order (stable by submission order for equal times).
        let mut arrivals: Vec<usize> = (0..n).collect();
        arrivals.sort_by(|&a, &b| {
            tasks[a]
                .arrival_s
                .partial_cmp(&tasks[b].arrival_s)
                .expect("arrival times must not be NaN")
        });
        let mut next_arrival = 0usize;
        let mut running: Vec<Running> = Vec::new();
        let mut now = 0.0_f64;

        loop {
            // Admit everything that has arrived.
            while next_arrival < n && tasks[arrivals[next_arrival]].arrival_s <= now + 1e-15 {
                let idx = arrivals[next_arrival];
                let t = &tasks[idx];
                running.push(Running {
                    idx,
                    remaining_core_s: t.work_core_s,
                    cap: f64::from(t.max_parallelism.min(self.cfg.cores)),
                    working_set: t.working_set_bytes,
                    alloc: 0.0,
                });
                next_arrival += 1;
            }

            if running.is_empty() {
                if next_arrival >= n {
                    break;
                }
                // Idle gap until the next arrival.
                let t_next = tasks[arrivals[next_arrival]].arrival_s;
                intervals.push(UtilInterval {
                    start_s: now,
                    dur_s: t_next - now,
                    busy_cores: 0.0,
                });
                now = t_next;
                continue;
            }

            // Water-fill core allocations.
            let efficiency = self.efficiency(&running);
            self.water_fill(&mut running);
            let busy: f64 = running.iter().map(|r| r.alloc).sum();

            // Rate per task = cores × scheduling efficiency / cache slowdown.
            let ws: u64 = running.iter().map(|r| r.working_set).sum();
            let slow = self.cache.slowdown(ws);
            let dt_complete = running
                .iter()
                .map(|r| r.remaining_core_s / (r.alloc * efficiency / slow))
                .fold(f64::INFINITY, f64::min);
            let dt_arrival = if next_arrival < n {
                tasks[arrivals[next_arrival]].arrival_s - now
            } else {
                f64::INFINITY
            };
            let dt = dt_complete.min(dt_arrival).max(0.0);

            intervals.push(UtilInterval {
                start_s: now,
                dur_s: dt,
                busy_cores: busy,
            });
            now += dt;

            for r in running.iter_mut() {
                r.remaining_core_s -= r.alloc * efficiency / slow * dt;
            }
            running.retain(|r| {
                if r.remaining_core_s <= tasks[r.idx].work_core_s * 1e-12 {
                    finish[r.idx] = now;
                    false
                } else {
                    true
                }
            });
        }

        let turnaround: Vec<f64> = (0..n).map(|i| finish[i] - tasks[i].arrival_s).collect();
        CpuOutcome {
            makespan_s: now,
            finish_s: finish,
            turnaround_s: turnaround,
            intervals,
        }
    }

    /// Convenience: makespan of running `n` copies of `task` concurrently.
    pub fn makespan_of_copies(&self, task: &CpuTask, copies: u32) -> f64 {
        let tasks: Vec<CpuTask> = (0..copies).map(|_| task.clone()).collect();
        self.run(&tasks).makespan_s
    }

    /// Scheduling efficiency: 1 when the machine is not oversubscribed;
    /// otherwise each quantum pays one context switch per extra runnable
    /// thread per core.
    fn efficiency(&self, running: &[Running]) -> f64 {
        let demand: f64 = running.iter().map(|r| r.cap).sum();
        let cores = f64::from(self.cfg.cores);
        if demand <= cores {
            1.0
        } else {
            let over = demand / cores - 1.0;
            let toll = self.cfg.context_switch_s / self.cfg.quantum_s * over;
            1.0 / (1.0 + toll)
        }
    }

    /// Divide `cores` among tasks: equal share, capped by per-task
    /// parallelism, spare capacity redistributed.
    fn water_fill(&self, running: &mut [Running]) {
        let mut capacity = f64::from(self.cfg.cores);
        for r in running.iter_mut() {
            r.alloc = 0.0;
        }
        let mut unsat: Vec<usize> = (0..running.len()).collect();
        while capacity > 1e-12 && !unsat.is_empty() {
            let share = capacity / unsat.len() as f64;
            let mut still = Vec::with_capacity(unsat.len());
            let mut used = 0.0;
            for &i in &unsat {
                let want = running[i].cap - running[i].alloc;
                if want <= share + 1e-12 {
                    running[i].alloc = running[i].cap;
                    used += want;
                } else {
                    running[i].alloc += share;
                    used += share;
                    still.push(i);
                }
            }
            capacity -= used;
            if still.len() == unsat.len() {
                // Everyone took a full share; capacity is exhausted.
                break;
            }
            unsat = still;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(cores: u32) -> CpuEngine {
        let mut cfg = CpuConfig::tiny(cores);
        cfg.context_switch_s = 0.0; // exact arithmetic in most tests
        CpuEngine::new(cfg)
    }

    #[test]
    fn empty_batch() {
        let e = engine(2);
        let out = e.run(&[]);
        assert_eq!(out.makespan_s, 0.0);
        assert!(out.finish_s.is_empty());
    }

    #[test]
    fn single_sequential_task() {
        let e = engine(4);
        let out = e.run(&[CpuTask::new("seq", 8.0, 1, 0)]);
        assert!((out.makespan_s - 8.0).abs() < 1e-9);
    }

    #[test]
    fn single_parallel_task_uses_all_cores() {
        let e = engine(4);
        let out = e.run(&[CpuTask::new("par", 8.0, 8, 0)]);
        // Capped at 4 cores → 2 s.
        assert!((out.makespan_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fair_share_between_two_wide_tasks() {
        let e = engine(4);
        let t = CpuTask::new("w", 8.0, 4, 0);
        let out = e.run(&[t.clone(), t]);
        // Each gets 2 cores → both finish at 4 s.
        assert!((out.makespan_s - 4.0).abs() < 1e-9);
        assert!((out.finish_s[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn narrow_task_leaves_capacity_to_wide_task() {
        let e = engine(4);
        let narrow = CpuTask::new("n", 6.0, 1, 0);
        let wide = CpuTask::new("w", 9.0, 4, 0);
        let out = e.run(&[narrow, wide]);
        // Water-fill: narrow 1 core, wide 3 cores. Wide finishes at 3 s;
        // then narrow (3 core-s left) continues alone → 6 s total.
        assert!(
            (out.finish_s[1] - 3.0).abs() < 1e-9,
            "wide {}",
            out.finish_s[1]
        );
        assert!(
            (out.finish_s[0] - 6.0).abs() < 1e-9,
            "narrow {}",
            out.finish_s[0]
        );
    }

    #[test]
    fn saturation_scales_makespan_linearly() {
        let e = engine(2);
        let t = CpuTask::new("t", 2.0, 1, 0);
        // 2 cores: 1 task → 2 s; 2 tasks → 2 s; 4 tasks → 4 s; 8 → 8 s.
        assert!((e.makespan_of_copies(&t, 1) - 2.0).abs() < 1e-9);
        assert!((e.makespan_of_copies(&t, 2) - 2.0).abs() < 1e-9);
        assert!((e.makespan_of_copies(&t, 4) - 4.0).abs() < 1e-9);
        assert!((e.makespan_of_copies(&t, 8) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn context_switch_overhead_slows_oversubscription() {
        let mut cfg = CpuConfig::tiny(2);
        cfg.context_switch_s = 1e-3; // 10% of the 10 ms quantum
        let e = CpuEngine::new(cfg);
        let t = CpuTask::new("t", 2.0, 2, 0);
        let base = engine(2).makespan_of_copies(&t, 4);
        let with_overhead = e.makespan_of_copies(&t, 4);
        assert!(with_overhead > base * 1.1, "{} vs {}", with_overhead, base);
    }

    #[test]
    fn cache_contention_slows_heavy_working_sets() {
        let e = engine(2); // 1 MiB L3
        let light = CpuTask::new("light", 2.0, 1, 64 << 10);
        let heavy = CpuTask::new("heavy", 2.0, 1, 1 << 20);
        let t_light = e.run(&[light.clone(), light]).makespan_s;
        let t_heavy = e.run(&[heavy.clone(), heavy]).makespan_s;
        assert!((t_light - 2.0).abs() < 1e-9);
        // 2 MiB aggregate on a 1 MiB L3 → 1.5× slowdown.
        assert!((t_heavy - 3.0).abs() < 1e-9, "heavy {}", t_heavy);
    }

    #[test]
    fn arrivals_are_honoured() {
        let e = engine(1);
        let a = CpuTask::new("a", 1.0, 1, 0);
        let b = CpuTask::new("b", 1.0, 1, 0).arriving_at(5.0);
        let out = e.run(&[a, b]);
        assert!((out.finish_s[0] - 1.0).abs() < 1e-9);
        assert!((out.finish_s[1] - 6.0).abs() < 1e-9);
        assert!((out.turnaround_s[1] - 1.0).abs() < 1e-9);
        // The idle gap appears in the utilisation profile.
        assert!(out
            .intervals
            .iter()
            .any(|iv| iv.busy_cores == 0.0 && iv.dur_s > 3.9));
    }

    #[test]
    fn utilisation_profile_is_contiguous_and_bounded() {
        let e = engine(2);
        let t = CpuTask::new("t", 1.0, 2, 0);
        let out = e.run(&[t.clone(), t.clone(), t]);
        let mut clock = 0.0;
        for iv in &out.intervals {
            assert!((iv.start_s - clock).abs() < 1e-9);
            assert!(iv.busy_cores <= 2.0 + 1e-9);
            clock += iv.dur_s;
        }
        assert!((clock - out.makespan_s).abs() < 1e-9);
    }

    #[test]
    fn determinism() {
        let e = CpuEngine::new(CpuConfig::xeon_e5520_x2());
        let tasks: Vec<CpuTask> = (0..10)
            .map(|i| CpuTask::new("t", 1.0 + i as f64 * 0.3, 1 + (i % 4), (i as u64) << 20))
            .collect();
        let a = e.run(&tasks);
        let b = e.run(&tasks);
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.finish_s, b.finish_s);
    }
}
