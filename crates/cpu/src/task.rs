//! CPU task descriptors.

use std::sync::Arc;

/// One workload instance as seen by the OS: an OpenMP-parallelised
/// process with a fixed amount of work.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuTask {
    /// Human-readable name.
    pub name: Arc<str>,
    /// Total work in core-seconds (time on one core at solo speed).
    pub work_core_s: f64,
    /// Maximum cores the instance can exploit concurrently (OpenMP
    /// scalability limit; enterprise kernels with small inputs often
    /// cannot use the whole machine).
    pub max_parallelism: u32,
    /// Resident working-set size in bytes (drives L3 contention).
    pub working_set_bytes: u64,
    /// Arrival time in seconds (0 = present at simulation start).
    pub arrival_s: f64,
}

impl CpuTask {
    /// Create a task arriving at time zero.
    pub fn new(name: &str, work_core_s: f64, max_parallelism: u32, working_set_bytes: u64) -> Self {
        assert!(work_core_s > 0.0, "work must be positive");
        assert!(max_parallelism > 0, "parallelism must be >= 1");
        CpuTask {
            name: Arc::from(name),
            work_core_s,
            max_parallelism,
            working_set_bytes,
            arrival_s: 0.0,
        }
    }

    /// Set a non-zero arrival time.
    pub fn arriving_at(mut self, t: f64) -> Self {
        assert!(t >= 0.0, "arrival must be non-negative");
        self.arrival_s = t;
        self
    }

    /// Solo execution time on an otherwise idle machine with `cores`
    /// available: work divided across usable cores.
    pub fn solo_time_s(&self, cores: u32) -> f64 {
        self.work_core_s / f64::from(self.max_parallelism.min(cores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_time_uses_min_of_parallelism_and_cores() {
        let t = CpuTask::new("t", 16.0, 4, 0);
        assert_eq!(t.solo_time_s(8), 4.0);
        assert_eq!(t.solo_time_s(2), 8.0);
    }

    #[test]
    fn arrival_builder() {
        let t = CpuTask::new("t", 1.0, 1, 0).arriving_at(2.5);
        assert_eq!(t.arrival_s, 2.5);
    }

    #[test]
    #[should_panic(expected = "work must be positive")]
    fn zero_work_rejected() {
        let _ = CpuTask::new("t", 0.0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_rejected() {
        let _ = CpuTask::new("t", 1.0, 0, 0);
    }
}
