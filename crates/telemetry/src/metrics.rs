//! Counters, gauges and log-bucketed histograms.
//!
//! Histograms use geometric (log-spaced) bucket boundaries so that a single
//! configuration covers nanosecond staging copies and multi-second Poisson
//! replays with bounded *relative* error.  Two histograms with the same
//! configuration merge by adding bucket counts, which is how per-thread
//! registries are folded into one at shutdown.

use std::collections::BTreeMap;

/// Default lower edge of the first finite bucket (1 ns when values are
/// seconds).  Anything smaller lands in the underflow bucket.
pub const DEFAULT_LOWEST: f64 = 1e-9;

/// Default geometric growth factor between bucket boundaries.  1.08 keeps
/// the worst-case relative quantile error under ~4% (half a bucket) while
/// spanning 1 ns..1000 s in ~360 buckets.
pub const DEFAULT_GROWTH: f64 = 1.08;

/// A log-bucketed histogram over non-negative `f64` samples.
///
/// Bucket 0 is the underflow range `[0, lowest)`; bucket `i >= 1` covers
/// `[lowest * growth^(i-1), lowest * growth^i)`.  Exact `min`, `max`, `sum`
/// and `count` are tracked alongside the buckets so summary statistics do
/// not suffer bucketing error.
#[derive(Debug, Clone)]
pub struct Histogram {
    lowest: f64,
    growth: f64,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new(DEFAULT_LOWEST, DEFAULT_GROWTH)
    }
}

impl Histogram {
    /// Creates a histogram whose first finite bucket starts at `lowest` and
    /// whose bucket boundaries grow by `growth` per bucket.
    ///
    /// # Panics
    /// Panics if `lowest <= 0` or `growth <= 1`.
    pub fn new(lowest: f64, growth: f64) -> Self {
        assert!(lowest > 0.0, "histogram lowest bound must be positive");
        assert!(growth > 1.0, "histogram growth factor must exceed 1");
        Self {
            lowest,
            growth,
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Index of the bucket that holds `value`.  Negative and NaN samples are
    /// clamped into the underflow bucket rather than rejected: the simulator
    /// should keep running even if a model produces a degenerate cost.
    fn bucket_index(&self, value: f64) -> usize {
        if value.is_nan() || value < self.lowest {
            return 0;
        }
        1 + ((value / self.lowest).ln() / self.growth.ln()).floor() as usize
    }

    /// Lower bound of bucket `i` (0 for the underflow bucket).
    fn bucket_lo(&self, i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            self.lowest * self.growth.powi(i as i32 - 1)
        }
    }

    /// Upper bound of bucket `i`.
    fn bucket_hi(&self, i: usize) -> f64 {
        self.lowest * self.growth.powi(i as i32)
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_nan() { 0.0 } else { value.max(0.0) };
        let idx = self.bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean of recorded samples, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate for `p` in percent.
    ///
    /// `p` is clamped to `[0, 100]`; an empty histogram returns 0.  The
    /// estimate is the geometric midpoint of the bucket containing the
    /// nearest rank, clamped to the exact observed `[min, max]` so the
    /// tails never over-report.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            return self.min();
        }
        // Nearest-rank definition: the smallest value such that at least
        // ceil(p/100 * count) samples are <= it.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = if i == 0 {
                    self.bucket_lo(0)
                } else {
                    (self.bucket_lo(i) * self.bucket_hi(i)).sqrt()
                };
                return mid.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Merges `other` into `self` by adding bucket counts.
    ///
    /// # Panics
    /// Panics if the two histograms were configured with different bucket
    /// boundaries — merging those would silently misplace samples.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lowest == other.lowest && self.growth == other.growth,
            "cannot merge histograms with different bucket layouts"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A named collection of counters, gauges and histograms.
///
/// `BTreeMap` keeps iteration (and therefore every exporter's output)
/// deterministic, which the golden-file tests rely on.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the named histogram (default bucket layout).
    pub fn histogram_record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other side's value (last writer wins), histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_half_open() {
        let h = Histogram::new(1e-9, 2.0);
        // Underflow bucket takes everything below the lowest bound.
        assert_eq!(h.bucket_index(0.0), 0);
        assert_eq!(h.bucket_index(0.9e-9), 0);
        assert_eq!(h.bucket_index(-3.0), 0);
        assert_eq!(h.bucket_index(f64::NAN), 0);
        // The lowest bound itself opens bucket 1: [1e-9, 2e-9).
        assert_eq!(h.bucket_index(1e-9), 1);
        assert_eq!(h.bucket_index(1.99e-9), 1);
        // Each boundary value belongs to the bucket it opens.
        assert_eq!(h.bucket_index(2e-9), 2);
        assert_eq!(h.bucket_index(4e-9), 3);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn percentiles_track_exact_quantiles_within_bucket_error() {
        let mut h = Histogram::default();
        let mut exact: Vec<f64> = Vec::new();
        // Deterministic skewed samples over four decades.
        for i in 0..10_000u32 {
            let x = 1e-6 * (1.0 + (i as f64 * 0.37).sin().abs() * 9_999.0);
            h.record(x);
            exact.push(x);
        }
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &p in &[10.0, 50.0, 90.0, 95.0, 99.0] {
            let rank = ((p / 100.0) * exact.len() as f64).ceil() as usize - 1;
            let truth = exact[rank];
            let est = h.percentile(p);
            let rel = (est - truth).abs() / truth;
            assert!(
                rel < DEFAULT_GROWTH - 1.0,
                "p{p}: est {est} vs exact {truth} (rel err {rel})"
            );
        }
        assert_eq!(h.percentile(0.0), exact[0]);
        assert_eq!(h.percentile(100.0), *exact.last().unwrap());
        // Out-of-range percentiles clamp instead of panicking.
        assert_eq!(h.percentile(-5.0), exact[0]);
        assert_eq!(h.percentile(250.0), *exact.last().unwrap());
    }

    #[test]
    fn merge_is_equivalent_to_recording_in_one() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for i in 0..500 {
            let x = 1e-3 * (i as f64 + 1.0);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for &p in &[25.0, 50.0, 75.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn merge_rejects_mismatched_layouts() {
        let mut a = Histogram::new(1e-9, 2.0);
        let b = Histogram::new(1e-6, 2.0);
        a.merge(&b);
    }

    #[test]
    fn cross_thread_merge_through_registry() {
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                let mut reg = MetricsRegistry::new();
                for i in 0..250 {
                    reg.counter_add("requests", 1.0);
                    reg.histogram_record("latency_s", (t * 250 + i) as f64 * 1e-4 + 1e-4);
                }
                reg.gauge_set("worker", t as f64);
                tx.send(reg).unwrap();
            }));
        }
        drop(tx);
        let mut total = MetricsRegistry::new();
        for reg in rx {
            total.merge(&reg);
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.counter("requests"), 1000.0);
        let h = total.histogram("latency_s").unwrap();
        assert_eq!(h.count(), 1000);
        // All 1000 samples are distinct values in [1e-4, 0.1]; the median
        // must land mid-range regardless of which thread recorded it.
        let p50 = h.percentile(50.0);
        assert!(p50 > 0.03 && p50 < 0.07, "median {p50}");
    }

    #[test]
    fn registry_counter_and_gauge_basics() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("launches", 2.0);
        reg.counter_add("launches", 3.0);
        reg.gauge_set("queue_depth", 7.0);
        reg.gauge_set("queue_depth", 4.0);
        assert_eq!(reg.counter("launches"), 5.0);
        assert_eq!(reg.counter("missing"), 0.0);
        assert_eq!(reg.gauge("queue_depth"), Some(4.0));
        assert_eq!(reg.gauge("missing"), None);
    }
}
