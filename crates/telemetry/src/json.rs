//! Minimal JSON support: a string/number writer for the exporters and a
//! validating parser for the tests.
//!
//! The workspace is dependency-free, so instead of serde this module
//! provides exactly what the exporters need: correct string escaping,
//! finite-number formatting, and a recursive-descent parser that checks
//! well-formedness (and lets tests walk the parsed structure).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number.  Non-finite values (which JSON
/// cannot represent) are written as `null`.
pub fn write_number(out: &mut String, v: f64) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{}", v as i64);
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value, used by validation tests to inspect exporter output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience: `obj["key"]` lookup that works through the enum.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }
}

/// Parses `input` as one JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("expected digits at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!(
                "expected fraction digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!(
                "expected exponent digits at byte {pos}",
                pos = *pos
            ));
        }
    }
    // The scanned range is ASCII digits/signs by construction.
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8 in number")?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed by our exporters;
                        // replace lone surrogates rather than erroring out.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err("raw control char in string".into()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf8")?;
                let ch = s.chars().next().ok_or("empty string tail")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote \" backslash \\ newline \n tab \t unicode é control \u{0001}";
        let mut out = String::new();
        write_string(&mut out, nasty);
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed, Value::String(nasty.to_string()));
    }

    #[test]
    fn number_formatting_round_trips() {
        for v in [0.0, 1.0, -3.5, 1e-9, 123456.789, 2.5e12] {
            let mut out = String::new();
            write_number(&mut out, v);
            let parsed = parse(&out).unwrap();
            assert_eq!(parsed.as_f64(), Some(v), "value {v}");
        }
        let mut out = String::new();
        write_number(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2,{"b":null,"c":true}],"d":"x"}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
        assert_eq!(v.get("d").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "[1] trailing",
            "{'single':1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
