//! Structured spans over simulated time.
//!
//! A span is a named interval `[start_s, end_s]` on some *track*.  Tracks
//! are identified by a `(process, lane)` pair — e.g. `("host", "backend")`
//! or `("gpu0", "sm3")` — and map onto Chrome trace-event pid/tid rows at
//! export time.  Spans nest through explicit parent ids: the simulator
//! knows the full lifetime of each phase when it records it (simulated
//! clocks only move when the code advances them), so spans are recorded
//! complete rather than via enter/exit guards.

use crate::sink::TelemetrySink;

/// One completed span on a simulated-time track.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within one sink, assigned in emit order.
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Event name, e.g. `"rpc"`, `"staging"`, `"block"`.
    pub name: String,
    /// Process-level track, e.g. `"host"` or `"gpu0"`.
    pub process: String,
    /// Lane within the process, e.g. `"backend"` or `"sm2"`.
    pub lane: String,
    /// Simulated start time in seconds.
    pub start_s: f64,
    /// Simulated end time in seconds (`>= start_s`).
    pub end_s: f64,
    /// Free-form key/value annotations.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Span duration in simulated seconds (never negative).
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// Fluent builder returned by [`TelemetrySink::span`].
///
/// Dropping the builder without calling [`emit`](Self::emit) records
/// nothing; on a disabled sink `emit` is a no-op returning `None`.
#[must_use = "call .emit() to record the span"]
pub struct SpanBuilder<'a> {
    pub(crate) sink: &'a TelemetrySink,
    pub(crate) record: SpanRecord,
}

impl SpanBuilder<'_> {
    /// Sets the parent span id (pass the value a previous `emit` returned).
    pub fn parent(mut self, parent: Option<u64>) -> Self {
        self.record.parent = parent;
        self
    }

    /// Attaches a key/value attribute.
    pub fn attr(mut self, key: &str, value: impl ToString) -> Self {
        self.record.attrs.push((key.to_string(), value.to_string()));
        self
    }

    /// Records the span, returning its id so children can reference it.
    pub fn emit(self) -> Option<u64> {
        self.sink.commit_span(self.record)
    }
}
