//! # ewc-telemetry — runtime observability for the consolidation framework
//!
//! The paper's framework is a simulated distributed system: frontends issue
//! RPCs to a backend, the backend stages arguments, consults the decision
//! engine, and launches consolidated kernels on a simulated GPU.  Everything
//! runs on *simulated* clocks, so an off-the-shelf tracing library (which
//! timestamps with the wall clock) would record nonsense.  This crate is a
//! purpose-built observability layer that is aware of the simulation:
//!
//! * [`metrics`] — a registry of counters, gauges and log-bucketed
//!   [`metrics::Histogram`]s.  Histograms are mergeable across threads and
//!   answer percentile queries, replacing the ad-hoc sort-and-index code
//!   that previously lived in the bench crate.
//! * [`span`] — structured spans over simulated time with parent/child
//!   nesting and per-span key/value attributes, modeling the request
//!   lifecycle `frontend call → RPC → backend queue → decision → staging
//!   copy → launch → block completion`.
//! * [`audit`] — a decision audit log: every consolidate/serial/CPU verdict
//!   together with the model predictions that justified it.
//! * [`export`] — exporters: JSON-lines, Chrome trace-event format (load the
//!   file in <https://ui.perfetto.dev>), and a plain-text summary table.
//! * [`json`] — a dependency-free JSON writer and validating parser used by
//!   the exporters and their tests.
//!
//! The entry point is [`TelemetrySink`], a cheaply clonable handle that
//! every instrumented component holds.  A default-constructed sink is
//! disabled and every recording call is a branch on an `Option` — the hot
//! path of the simulator is unchanged when telemetry is off.
//!
//! ```
//! use ewc_telemetry::TelemetrySink;
//!
//! let sink = TelemetrySink::enabled();
//! sink.span("host", "backend", "decision", 0.10, 0.25)
//!     .attr("choice", "consolidate")
//!     .emit();
//! sink.histogram_record("latency_s", 0.15);
//! let snap = sink.snapshot().unwrap();
//! assert_eq!(snap.spans.len(), 1);
//! ```

// Telemetry records from inside the backend daemon and the engine hot
// loop; an observability layer must never be what panics the process.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod audit;
pub mod export;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;

pub use audit::{DecisionRecord, Verdict};
pub use metrics::{Histogram, MetricsRegistry};
pub use sink::{TelemetrySink, TelemetrySnapshot};
pub use span::{SpanBuilder, SpanRecord};
