//! The [`TelemetrySink`] handle and its collected snapshot.
//!
//! A sink is either disabled (the default — every call returns after one
//! `Option` check, no allocation, no locking) or enabled, in which case it
//! wraps a mutex-protected collector shared by every clone.  Frontend
//! threads, the backend thread and the GPU simulator all hold clones of
//! the same sink; at shutdown a [`TelemetrySnapshot`] is taken and handed
//! to the exporters.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use ewc_exec::VirtualClock;

use crate::audit::DecisionRecord;
use crate::metrics::MetricsRegistry;
use crate::span::{SpanBuilder, SpanRecord};

#[derive(Debug, Default)]
struct Collector {
    next_span_id: u64,
    spans: Vec<SpanRecord>,
    metrics: MetricsRegistry,
    series: BTreeMap<String, Vec<(f64, f64)>>,
    audit: Vec<DecisionRecord>,
}

/// Cheaply clonable telemetry handle; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<Mutex<Collector>>>,
    /// Present in virtual-time span mode: the executor clock the
    /// recording components align their timelines to.
    clock: Option<VirtualClock>,
}

impl TelemetrySink {
    /// A sink that records nothing.  Equivalent to `TelemetrySink::default()`.
    pub fn disabled() -> Self {
        Self {
            inner: None,
            clock: None,
        }
    }

    /// A sink that collects everything recorded through any clone.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Collector::default()))),
            clock: None,
        }
    }

    /// A sink in **virtual-time span mode**: collects everything, and
    /// carries the executor clock recording components should drive
    /// their timelines from. The backend daemon adopts this clock as
    /// its host clock and switches to per-message batch boundaries
    /// (instead of OS-timing-dependent burst boundaries), which makes
    /// two identical runs produce byte-identical Chrome-trace exports.
    /// The default [`TelemetrySink::enabled`] mode keeps the burst
    /// behaviour of a live daemon.
    pub fn enabled_virtual(clock: VirtualClock) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Collector::default()))),
            clock: Some(clock),
        }
    }

    /// A sink that records **nothing** but still carries the executor
    /// clock: the backend daemon adopts the clock and the deterministic
    /// per-message batch boundaries of virtual-time span mode, without
    /// paying for collection. The open-loop load harness runs its
    /// non-telemetry scenarios in this mode so same-seed storms replay
    /// bit-identically.
    pub fn disabled_virtual(clock: VirtualClock) -> Self {
        Self {
            inner: None,
            clock: Some(clock),
        }
    }

    /// The executor clock, in virtual-time span mode; `None` in the
    /// default mode.
    pub fn virtual_clock(&self) -> Option<&VirtualClock> {
        self.clock.as_ref()
    }

    /// Whether this sink records anything.  Instrumented code may use this
    /// to skip building expensive attributes when telemetry is off.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts building a completed span on track `(process, lane)` covering
    /// simulated time `[start_s, end_s]`.  Call `.emit()` to record it.
    pub fn span(
        &self,
        process: &str,
        lane: &str,
        name: &str,
        start_s: f64,
        end_s: f64,
    ) -> SpanBuilder<'_> {
        SpanBuilder {
            sink: self,
            record: SpanRecord {
                id: 0,
                parent: None,
                name: name.to_string(),
                process: process.to_string(),
                lane: lane.to_string(),
                start_s,
                end_s,
                attrs: Vec::new(),
            },
        }
    }

    pub(crate) fn commit_span(&self, mut record: SpanRecord) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut c = inner.lock().expect("telemetry sink lock poisoned");
        c.next_span_id += 1;
        record.id = c.next_span_id;
        let id = record.id;
        c.spans.push(record);
        Some(id)
    }

    /// Adds `delta` to a named counter.
    pub fn counter_add(&self, name: &str, delta: f64) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("telemetry sink lock poisoned")
                .metrics
                .counter_add(name, delta);
        }
    }

    /// Sets a named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("telemetry sink lock poisoned")
                .metrics
                .gauge_set(name, value);
        }
    }

    /// Records a sample into a named histogram.
    pub fn histogram_record(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("telemetry sink lock poisoned")
                .metrics
                .histogram_record(name, value);
        }
    }

    /// Appends a `(time_s, value)` sample to a named time series (exported
    /// as Chrome counter events — e.g. instantaneous power draw in watts).
    pub fn series_sample(&self, name: &str, time_s: f64, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("telemetry sink lock poisoned")
                .series
                .entry(name.to_string())
                .or_default()
                .push((time_s, value));
        }
    }

    /// Records one decision-engine verdict.
    pub fn audit(&self, record: DecisionRecord) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("telemetry sink lock poisoned")
                .audit
                .push(record);
        }
    }

    /// Folds a whole per-thread [`MetricsRegistry`] into the sink.
    pub fn merge_metrics(&self, registry: &MetricsRegistry) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("telemetry sink lock poisoned")
                .metrics
                .merge(registry);
        }
    }

    /// Copies out everything collected so far, or `None` if disabled.
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        let inner = self.inner.as_ref()?;
        let c = inner.lock().expect("telemetry sink lock poisoned");
        let mut spans = c.spans.clone();
        // Stable order: by start time, then id — concurrent emitters may
        // interleave arbitrarily, exporters want chronological output.
        spans.sort_by(|a, b| {
            a.start_s
                .partial_cmp(&b.start_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        Some(TelemetrySnapshot {
            spans,
            metrics: c.metrics.clone(),
            series: c.series.clone(),
            audit: c.audit.clone(),
        })
    }
}

/// An owned copy of everything a sink collected.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// All spans, sorted by simulated start time.
    pub spans: Vec<SpanRecord>,
    /// Counters, gauges and histograms.
    pub metrics: MetricsRegistry,
    /// Named `(time_s, value)` series, e.g. power samples.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
    /// Decision audit log in emission order.
    pub audit: Vec<DecisionRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::Verdict;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        let id = sink.span("host", "backend", "rpc", 0.0, 1.0).emit();
        assert_eq!(id, None);
        sink.counter_add("x", 1.0);
        sink.histogram_record("h", 0.5);
        sink.series_sample("p", 0.0, 100.0);
        assert!(sink.snapshot().is_none());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!TelemetrySink::default().is_enabled());
    }

    #[test]
    fn spans_nest_and_sort_by_simulated_time() {
        let sink = TelemetrySink::enabled();
        // Emit out of chronological order, as concurrent components would.
        let parent = sink
            .span("host", "backend", "request", 1.0, 5.0)
            .attr("ctx", 3)
            .emit();
        let late = sink
            .span("host", "backend", "launch", 3.0, 5.0)
            .parent(parent);
        let early = sink
            .span("host", "backend", "staging", 1.0, 2.0)
            .parent(parent);
        let early_id = early.emit().unwrap();
        let late_id = late.emit().unwrap();
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.spans.len(), 3);
        // Chronological, ties broken by id.
        assert_eq!(snap.spans[0].name, "request");
        assert_eq!(snap.spans[1].name, "staging");
        assert_eq!(snap.spans[2].name, "launch");
        assert_eq!(snap.spans[1].id, early_id);
        assert_eq!(snap.spans[2].id, late_id);
        assert_eq!(snap.spans[1].parent, parent);
        assert_eq!(snap.spans[2].parent, parent);
        assert_eq!(
            snap.spans[0].attrs,
            vec![("ctx".to_string(), "3".to_string())]
        );
        assert!((snap.spans[0].duration_s() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_one_collector() {
        let sink = TelemetrySink::enabled();
        let clone = sink.clone();
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = sink.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    s.counter_add("ops", 1.0);
                    s.span(
                        "host",
                        &format!("worker{t}"),
                        "op",
                        i as f64,
                        i as f64 + 0.5,
                    )
                    .emit();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = clone.snapshot().unwrap();
        assert_eq!(snap.metrics.counter("ops"), 400.0);
        assert_eq!(snap.spans.len(), 400);
        // Ids are unique.
        let mut ids: Vec<u64> = snap.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
    }

    #[test]
    fn audit_and_series_round_trip() {
        let sink = TelemetrySink::enabled();
        sink.series_sample("power_w", 0.0, 180.0);
        sink.series_sample("power_w", 0.1, 260.0);
        sink.audit(DecisionRecord {
            time_s: 0.05,
            kernels: vec!["aes".into(), "search".into()],
            verdict: Verdict::Consolidate,
            consolidated: Some((1.0, 10.0)),
            serial: Some((1.4, 16.0)),
            cpu: None,
            reason: "consolidated energy wins".into(),
        });
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.series["power_w"].len(), 2);
        assert_eq!(snap.audit.len(), 1);
        assert_eq!(snap.audit[0].verdict.label(), "consolidate");
        assert_eq!(snap.audit[0].chosen(), Some((1.0, 10.0)));
    }
}
