//! Plain-text summary exporter.
//!
//! Renders counters, gauges, histogram percentiles, span/track totals and
//! the decision tally as aligned tables suitable for terminals and logs.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::audit::Verdict;
use crate::sink::TelemetrySnapshot;

fn rule(out: &mut String, title: &str) {
    let _ = writeln!(
        out,
        "\n== {title} {}",
        "=".repeat(58usize.saturating_sub(title.len()))
    );
}

/// Renders `snap` as a human-readable report.
pub fn render(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();

    if snap.metrics.counters().next().is_some() {
        rule(&mut out, "counters");
        for (name, value) in snap.metrics.counters() {
            let _ = writeln!(out, "{name:<40} {value:>14.3}");
        }
    }

    if snap.metrics.gauges().next().is_some() {
        rule(&mut out, "gauges");
        for (name, value) in snap.metrics.gauges() {
            let _ = writeln!(out, "{name:<40} {value:>14.3}");
        }
    }

    if snap.metrics.histograms().next().is_some() {
        rule(&mut out, "histograms");
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "mean", "p50", "p95", "p99", "max"
        );
        for (name, h) in snap.metrics.histograms() {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10.4e} {:>10.4e} {:>10.4e} {:>10.4e} {:>10.4e}",
                name,
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max()
            );
        }
    }

    if !snap.spans.is_empty() {
        rule(&mut out, "spans");
        let mut per_track: BTreeMap<(String, String), (usize, f64)> = BTreeMap::new();
        for s in &snap.spans {
            let e = per_track
                .entry((s.process.clone(), s.lane.clone()))
                .or_insert((0, 0.0));
            e.0 += 1;
            e.1 += s.duration_s();
        }
        let _ = writeln!(
            out,
            "{:<16} {:<16} {:>8} {:>14}",
            "process", "lane", "spans", "busy_s"
        );
        for ((process, lane), (count, busy)) in per_track {
            let _ = writeln!(out, "{process:<16} {lane:<16} {count:>8} {busy:>14.6}");
        }
    }

    if !snap.series.is_empty() {
        rule(&mut out, "series");
        for (name, samples) in &snap.series {
            let (mut lo, mut hi, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
            for &(_, v) in samples {
                lo = lo.min(v);
                hi = hi.max(v);
                sum += v;
            }
            let mean = sum / samples.len().max(1) as f64;
            let _ = writeln!(
                out,
                "{:<28} {:>8} samples  min {:>10.3}  mean {:>10.3}  max {:>10.3}",
                name,
                samples.len(),
                lo,
                mean,
                hi
            );
        }
    }

    if !snap.audit.is_empty() {
        rule(&mut out, "decisions");
        let mut tally: BTreeMap<&'static str, usize> = BTreeMap::new();
        for rec in &snap.audit {
            *tally.entry(rec.verdict.label()).or_insert(0) += 1;
        }
        for verdict in [
            Verdict::Consolidate,
            Verdict::SerialGpu,
            Verdict::Cpu,
            Verdict::Failed,
            Verdict::Drained,
            Verdict::Placed,
        ] {
            let n = tally.get(verdict.label()).copied().unwrap_or(0);
            // Fault- and fleet-path verdicts only show up once one has
            // happened, so healthy runs keep the familiar three-line tally.
            if n == 0
                && matches!(
                    verdict,
                    Verdict::Failed | Verdict::Drained | Verdict::Placed
                )
            {
                continue;
            }
            let _ = writeln!(out, "{:<40} {n:>14}", verdict.label());
        }
        let shown = snap.audit.len().min(8);
        let _ = writeln!(out, "\nlast {shown} verdicts:");
        for rec in snap.audit.iter().rev().take(shown).rev() {
            let _ = writeln!(
                out,
                "  t={:>10.6}s  {:<12} [{}]  {}",
                rec.time_s,
                rec.verdict.label(),
                rec.kernels.join("+"),
                rec.reason
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::DecisionRecord;
    use crate::sink::TelemetrySink;

    #[test]
    fn report_mentions_every_section_that_has_data() {
        let sink = TelemetrySink::enabled();
        sink.counter_add("launches", 2.0);
        sink.histogram_record("latency_s", 0.1);
        sink.span("host", "backend", "rpc", 0.0, 1.0).emit();
        sink.series_sample("power_w", 0.0, 199.0);
        sink.audit(DecisionRecord {
            time_s: 0.0,
            kernels: vec!["sort".into()],
            verdict: Verdict::SerialGpu,
            consolidated: Some((2.0, 30.0)),
            serial: Some((1.8, 25.0)),
            cpu: None,
            reason: "serial energy wins".into(),
        });
        let text = render(&sink.snapshot().unwrap());
        for section in ["counters", "histograms", "spans", "series", "decisions"] {
            assert!(text.contains(section), "missing section {section}\n{text}");
        }
        assert!(text.contains("serial_gpu"));
    }

    #[test]
    fn empty_snapshot_renders_empty_report() {
        let sink = TelemetrySink::enabled();
        assert!(render(&sink.snapshot().unwrap()).is_empty());
    }
}
