//! Exporters for a [`TelemetrySnapshot`](crate::TelemetrySnapshot).
//!
//! * [`chrome`] — Chrome trace-event JSON; open the file at
//!   <https://ui.perfetto.dev> or `chrome://tracing`.
//! * [`jsonl`] — one self-describing JSON object per line, for ad-hoc
//!   processing with `jq`/`grep`.
//! * [`summary`] — a plain-text table for terminals and logs.

pub mod chrome;
pub mod jsonl;
pub mod summary;
