//! JSON-lines exporter: one self-describing object per line.
//!
//! Every line is a complete JSON document with a `"type"` discriminator
//! (`span`, `counter`, `gauge`, `histogram`, `sample`, `decision`), which
//! makes the output trivially filterable with line-oriented tools.

use crate::json::{write_number, write_string};
use crate::sink::TelemetrySnapshot;

/// Renders `snap` as JSON-lines text.
pub fn render(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();

    for span in &snap.spans {
        out.push_str("{\"type\":\"span\",\"id\":");
        write_number(&mut out, span.id as f64);
        out.push_str(",\"parent\":");
        match span.parent {
            Some(p) => write_number(&mut out, p as f64),
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":");
        write_string(&mut out, &span.name);
        out.push_str(",\"process\":");
        write_string(&mut out, &span.process);
        out.push_str(",\"lane\":");
        write_string(&mut out, &span.lane);
        out.push_str(",\"start_s\":");
        write_number(&mut out, span.start_s);
        out.push_str(",\"end_s\":");
        write_number(&mut out, span.end_s);
        out.push_str(",\"attrs\":{");
        for (i, (k, v)) in span.attrs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(&mut out, k);
            out.push(':');
            write_string(&mut out, v);
        }
        out.push_str("}}\n");
    }

    for (name, value) in snap.metrics.counters() {
        out.push_str("{\"type\":\"counter\",\"name\":");
        write_string(&mut out, name);
        out.push_str(",\"value\":");
        write_number(&mut out, value);
        out.push_str("}\n");
    }

    for (name, value) in snap.metrics.gauges() {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        write_string(&mut out, name);
        out.push_str(",\"value\":");
        write_number(&mut out, value);
        out.push_str("}\n");
    }

    for (name, hist) in snap.metrics.histograms() {
        out.push_str("{\"type\":\"histogram\",\"name\":");
        write_string(&mut out, name);
        out.push_str(",\"count\":");
        write_number(&mut out, hist.count() as f64);
        out.push_str(",\"mean\":");
        write_number(&mut out, hist.mean());
        for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p95", 95.0), ("p99", 99.0)] {
            out.push_str(",\"");
            out.push_str(label);
            out.push_str("\":");
            write_number(&mut out, hist.percentile(p));
        }
        out.push_str(",\"min\":");
        write_number(&mut out, hist.min());
        out.push_str(",\"max\":");
        write_number(&mut out, hist.max());
        out.push_str("}\n");
    }

    for (name, samples) in &snap.series {
        for &(t, v) in samples {
            out.push_str("{\"type\":\"sample\",\"series\":");
            write_string(&mut out, name);
            out.push_str(",\"time_s\":");
            write_number(&mut out, t);
            out.push_str(",\"value\":");
            write_number(&mut out, v);
            out.push_str("}\n");
        }
    }

    for rec in &snap.audit {
        out.push_str("{\"type\":\"decision\",\"time_s\":");
        write_number(&mut out, rec.time_s);
        out.push_str(",\"verdict\":");
        write_string(&mut out, rec.verdict.label());
        out.push_str(",\"kernels\":[");
        for (i, k) in rec.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(&mut out, k);
        }
        out.push(']');
        for (label, cand) in [
            ("consolidated", rec.consolidated),
            ("serial", rec.serial),
            ("cpu", rec.cpu),
        ] {
            out.push_str(",\"");
            out.push_str(label);
            out.push_str("\":");
            match cand {
                Some((t, e)) => {
                    out.push_str("{\"time_s\":");
                    write_number(&mut out, t);
                    out.push_str(",\"energy_j\":");
                    write_number(&mut out, e);
                    out.push('}');
                }
                None => out.push_str("null"),
            }
        }
        out.push_str(",\"reason\":");
        write_string(&mut out, &rec.reason);
        out.push_str("}\n");
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{DecisionRecord, Verdict};
    use crate::json;
    use crate::sink::TelemetrySink;

    #[test]
    fn every_line_is_valid_json_with_a_type() {
        let sink = TelemetrySink::enabled();
        sink.span("host", "backend", "rpc", 0.0, 0.5)
            .attr("bytes", 1024)
            .emit();
        sink.counter_add("launches", 3.0);
        sink.gauge_set("queue", 2.0);
        sink.histogram_record("latency_s", 0.25);
        sink.series_sample("power_w", 0.1, 212.5);
        sink.audit(DecisionRecord {
            time_s: 0.2,
            kernels: vec!["aes".into()],
            verdict: Verdict::Cpu,
            consolidated: None,
            serial: Some((0.9, 11.0)),
            cpu: Some((0.4, 3.0)),
            reason: "cpu energy wins".into(),
        });
        let text = render(&sink.snapshot().unwrap());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            let v = json::parse(line).expect("line parses");
            assert!(v.get("type").is_some(), "line {line} has a type");
        }
        assert!(text.contains("\"verdict\":\"cpu\""));
        assert!(text.contains("\"cpu\":{\"time_s\":0.4"));
    }
}
