//! Chrome trace-event exporter.
//!
//! Emits the JSON object format (`{"traceEvents":[...]}`) understood by
//! Perfetto and `chrome://tracing`.  Spans become complete (`"ph":"X"`)
//! events with microsecond timestamps; each distinct span *process* becomes
//! a trace pid and each `(process, lane)` pair a tid, both named via
//! metadata (`"ph":"M"`) events.  Time series become counter (`"ph":"C"`)
//! events on pid 0.

use std::collections::BTreeMap;

use crate::json::{write_number, write_string};
use crate::sink::TelemetrySnapshot;

const US_PER_S: f64 = 1e6;

/// Renders `snap` as a Chrome trace-event JSON document.
pub fn render(snap: &TelemetrySnapshot) -> String {
    // Deterministic pid/tid assignment: sorted by name.
    let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut tids: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    for span in &snap.spans {
        let next_pid = pids.len() as u64 + 1;
        pids.entry(span.process.as_str()).or_insert(next_pid);
        let next_tid = tids
            .iter()
            .filter(|((p, _), _)| *p == span.process.as_str())
            .count() as u64
            + 1;
        tids.entry((span.process.as_str(), span.lane.as_str()))
            .or_insert(next_tid);
    }

    let mut out = String::with_capacity(4096 + snap.spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |out: &mut String, body: &str| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(body);
    };

    // Process / thread naming metadata.
    for (process, pid) in &pids {
        let mut ev = String::new();
        ev.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
        write_number(&mut ev, *pid as f64);
        ev.push_str(",\"tid\":0,\"args\":{\"name\":");
        write_string(&mut ev, process);
        ev.push_str("}}");
        push_event(&mut out, &ev);
    }
    for ((process, lane), tid) in &tids {
        let pid = pids[process];
        let mut ev = String::new();
        ev.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":");
        write_number(&mut ev, pid as f64);
        ev.push_str(",\"tid\":");
        write_number(&mut ev, *tid as f64);
        ev.push_str(",\"args\":{\"name\":");
        write_string(&mut ev, lane);
        ev.push_str("}}");
        push_event(&mut out, &ev);
    }

    // Spans as complete events.
    for span in &snap.spans {
        let pid = pids[span.process.as_str()];
        let tid = tids[&(span.process.as_str(), span.lane.as_str())];
        let mut ev = String::new();
        ev.push_str("{\"ph\":\"X\",\"name\":");
        write_string(&mut ev, &span.name);
        ev.push_str(",\"cat\":");
        write_string(&mut ev, &span.process);
        ev.push_str(",\"pid\":");
        write_number(&mut ev, pid as f64);
        ev.push_str(",\"tid\":");
        write_number(&mut ev, tid as f64);
        ev.push_str(",\"ts\":");
        write_number(&mut ev, span.start_s * US_PER_S);
        ev.push_str(",\"dur\":");
        write_number(&mut ev, span.duration_s() * US_PER_S);
        ev.push_str(",\"args\":{\"span_id\":");
        write_number(&mut ev, span.id as f64);
        if let Some(parent) = span.parent {
            ev.push_str(",\"parent_id\":");
            write_number(&mut ev, parent as f64);
        }
        for (k, v) in &span.attrs {
            ev.push(',');
            write_string(&mut ev, k);
            ev.push(':');
            write_string(&mut ev, v);
        }
        ev.push_str("}}");
        push_event(&mut out, &ev);
    }

    // Time series as counter events on pid 0.
    for (name, samples) in &snap.series {
        for &(t, v) in samples {
            let mut ev = String::new();
            ev.push_str("{\"ph\":\"C\",\"name\":");
            write_string(&mut ev, name);
            ev.push_str(",\"pid\":0,\"tid\":0,\"ts\":");
            write_number(&mut ev, t * US_PER_S);
            ev.push_str(",\"args\":{\"value\":");
            write_number(&mut ev, v);
            ev.push_str("}}");
            push_event(&mut out, &ev);
        }
    }

    // Decision verdicts as instant events on pid 0, one lane for the
    // decision engine so verdicts line up with the spans around them.
    for rec in &snap.audit {
        let mut ev = String::new();
        ev.push_str("{\"ph\":\"i\",\"s\":\"g\",\"name\":");
        write_string(&mut ev, &format!("decision:{}", rec.verdict.label()));
        ev.push_str(",\"pid\":0,\"tid\":0,\"ts\":");
        write_number(&mut ev, rec.time_s * US_PER_S);
        ev.push_str(",\"args\":{\"kernels\":");
        write_string(&mut ev, &rec.kernels.join("+"));
        ev.push_str(",\"reason\":");
        write_string(&mut ev, &rec.reason);
        ev.push_str("}}");
        push_event(&mut out, &ev);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::sink::TelemetrySink;

    #[test]
    fn exports_valid_json_with_named_tracks() {
        let sink = TelemetrySink::enabled();
        let root = sink.span("host", "frontend0", "call", 0.0, 2.0).emit();
        sink.span("host", "backend", "rpc", 0.1, 0.3)
            .parent(root)
            .emit();
        sink.span("gpu0", "sm0", "block", 0.5, 1.5)
            .parent(root)
            .emit();
        sink.series_sample("power_w", 0.0, 200.0);
        let doc = render(&sink.snapshot().unwrap());
        let v = json::parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process_name + 3 thread_name + 3 X + 1 C = 9 events.
        assert_eq!(events.len(), 9);
        let x: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .collect();
        assert_eq!(x.len(), 3);
        for ev in &x {
            assert!(ev.get("ts").unwrap().as_f64().is_some());
            assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        }
        // Distinct processes got distinct pids.
        let pids: std::collections::BTreeSet<i64> = x
            .iter()
            .map(|e| e.get("pid").unwrap().as_f64().unwrap() as i64)
            .collect();
        assert_eq!(pids.len(), 2);
    }
}
