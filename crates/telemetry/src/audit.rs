//! Decision audit log.
//!
//! Every consolidate/serial/CPU verdict made by the decision engine is
//! recorded together with the model predictions that justified it, so a
//! surprising schedule can be explained after the fact (which prediction
//! won, and by how much).

use std::sync::Arc;

/// The scheduling verdict for one kernel group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Space-share the GPU: launch the group as one consolidated kernel.
    Consolidate,
    /// Time-share the GPU: launch the kernels back-to-back.
    SerialGpu,
    /// Keep the work on the host CPU.
    Cpu,
    /// The request could not be completed by any rung of the degradation
    /// ladder and was failed back to its frontend.
    Failed,
    /// The request was abandoned: its frontend disconnected before the
    /// work ran, so the backend drained it from the pending queue.
    Drained,
    /// A fleet placement event: a context was bound to a device (or
    /// drained off a tripped one and re-placed). Only emitted when an
    /// explicit fleet is configured.
    Placed,
    /// The request was shed by the admission controller (queue bound,
    /// rate limit, priority class under pressure, or CoDel-style queue
    /// age) instead of being executed. Only emitted when admission
    /// control is configured.
    Shed,
    /// The degradation ladder changed level (stepped down under
    /// sustained pressure, or back up after a quiet period). Only
    /// emitted when admission control is configured.
    Degraded,
    /// A device moved to a different power state (a DVFS level, or
    /// parked in idle/sleep). Only emitted when a power-state stack is
    /// configured.
    StateChanged,
}

impl Verdict {
    /// Stable lower-case label used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Consolidate => "consolidate",
            Verdict::SerialGpu => "serial_gpu",
            Verdict::Cpu => "cpu",
            Verdict::Failed => "failed",
            Verdict::Drained => "drained",
            Verdict::Placed => "placed",
            Verdict::Shed => "shed",
            Verdict::Degraded => "degraded",
            Verdict::StateChanged => "state_changed",
        }
    }
}

/// One audited decision: the verdict plus all candidate costs.
///
/// Times are simulated seconds, energies joules.  A candidate the engine
/// did not evaluate (e.g. CPU execution for a group that cannot run on the
/// host) is `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Simulated time at which the decision was taken.
    pub time_s: f64,
    /// Kernel names in the group, in submission order.
    pub kernels: Vec<Arc<str>>,
    /// The verdict.
    pub verdict: Verdict,
    /// Predicted (time, energy) if the group is consolidated.
    pub consolidated: Option<(f64, f64)>,
    /// Predicted (time, energy) if the kernels run serially on the GPU.
    pub serial: Option<(f64, f64)>,
    /// Predicted (time, energy) if the work stays on the CPU.
    pub cpu: Option<(f64, f64)>,
    /// Short human-readable justification, e.g. `"consolidated energy
    /// 12.3 J beats serial 15.9 J by >2% margin"`.
    pub reason: String,
}

impl DecisionRecord {
    /// Predicted (time, energy) of the chosen candidate, when evaluated.
    pub fn chosen(&self) -> Option<(f64, f64)> {
        match self.verdict {
            Verdict::Consolidate => self.consolidated,
            Verdict::SerialGpu => self.serial,
            Verdict::Cpu => self.cpu,
            Verdict::Failed
            | Verdict::Drained
            | Verdict::Placed
            | Verdict::Shed
            | Verdict::Degraded
            | Verdict::StateChanged => None,
        }
    }
}
