//! Resilience acceptance tests: deterministic fault replay, soak
//! completion under fault storms, circuit-breaker behaviour, and
//! frontend-death draining — all on the simulated clock, all seeded.

use std::sync::Arc;

use ewc_core::{Frontend, ResiliencePolicy, Runtime, RuntimeConfig, Template};
use ewc_faults::{soak, FaultConfig, SharedFaultPlan, SoakConfig};
use ewc_gpu::GpuConfig;
use ewc_workloads::{AesWorkload, Workload};

#[test]
fn same_seed_replays_identical_faults_and_decisions() {
    let cfg = SoakConfig {
        seed: 11,
        processes: 3,
        requests_per_process: 6,
        sync_every: 2,
        faults: FaultConfig::storm(),
        ..SoakConfig::default()
    };
    let a = soak::run(&cfg);
    let b = soak::run(&cfg);
    assert!(!a.fault_log.is_empty(), "storm must inject faults");
    assert_eq!(
        a.fault_log, b.fault_log,
        "same seed must produce the same fault schedule"
    );
    assert_eq!(
        a.audit, b.audit,
        "same seed must produce the same recovery decisions"
    );
    assert_eq!(a.stats, b.stats, "backend statistics must replay exactly");
    assert_eq!(
        (a.submitted, a.verified, a.failed, a.dropped),
        (b.submitted, b.verified, b.failed, b.dropped)
    );
}

#[test]
fn soak_matrix_fan_out_matches_serial() {
    // The {light, storm} × seeds preset matrix must produce identical
    // reports whether the configs run serially or across a worker pool:
    // each soak owns its runtime and its seeded fault plan, so thread
    // scheduling must not be observable.
    let mut cfgs = soak::matrix(&[5, 6]);
    for cfg in &mut cfgs {
        cfg.processes = 2;
        cfg.requests_per_process = 3;
    }
    assert_eq!(cfgs.len(), 4, "two seeds × two fault profiles");
    let serial = soak::run_matrix(&cfgs, 1);
    let fanned = soak::run_matrix(&cfgs, 4);
    assert_eq!(serial.len(), fanned.len());
    for (a, b) in serial.iter().zip(&fanned) {
        assert_eq!(a.fault_log, b.fault_log);
        assert_eq!(a.audit, b.audit);
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            (a.submitted, a.verified, a.failed, a.dropped, a.mismatched),
            (b.submitted, b.verified, b.failed, b.dropped, b.mismatched)
        );
        assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
        assert!(a.balanced());
    }
}

#[test]
fn different_seeds_diverge() {
    let base = SoakConfig {
        processes: 2,
        requests_per_process: 6,
        faults: FaultConfig::storm(),
        ..SoakConfig::default()
    };
    let a = soak::run(&SoakConfig {
        seed: 1,
        ..base.clone()
    });
    let b = soak::run(&SoakConfig { seed: 2, ..base });
    assert_ne!(a.fault_log, b.fault_log);
}

#[test]
fn storm_soak_completes_every_request_without_panics() {
    let report = soak::run(&SoakConfig {
        seed: 42,
        processes: 4,
        requests_per_process: 10,
        sync_every: 2,
        faults: FaultConfig::storm(),
        ..SoakConfig::default()
    });
    assert!(report.submitted > 0);
    assert!(
        report.balanced(),
        "every request must be verified, failed, or dropped:\n{}",
        report.render()
    );
    assert_eq!(report.mismatched, 0, "surviving outputs must be correct");
    assert!(
        report.verified > 0,
        "most requests should survive the storm"
    );
    assert!(!report.fault_log.is_empty());
    assert!(
        report.stats.faults_observed + report.stats.retransmits > 0,
        "the backend must actually have seen fault pressure"
    );
    assert!(report.energy_j > 0.0);
}

#[test]
fn quiet_soak_is_a_clean_baseline() {
    let report = soak::run(&SoakConfig {
        seed: 5,
        processes: 3,
        requests_per_process: 4,
        sync_every: 2,
        faults: FaultConfig::quiet(),
        ..SoakConfig::default()
    });
    assert!(report.balanced());
    assert_eq!(report.verified, report.submitted);
    assert_eq!(report.failed + report.dropped + report.mismatched, 0);
    assert!(report.fault_log.is_empty());
    assert_eq!(report.stats.faults_observed, 0);
    assert_eq!(report.stats.breaker_trips, 0);
}

#[test]
fn breaker_trips_and_work_finishes_on_cpu_with_energy_accounted() {
    let report = soak::run(&SoakConfig {
        seed: 3,
        processes: 2,
        requests_per_process: 4,
        sync_every: 2,
        faults: FaultConfig {
            hang_rate: 1.0,
            ..FaultConfig::quiet()
        },
        resilience: ResiliencePolicy {
            breaker_threshold: 2,
            breaker_cooldown_s: 1e6, // never closes within the run
            ..ResiliencePolicy::default()
        },
        ..SoakConfig::default()
    });
    assert!(
        report.stats.breaker_trips >= 1,
        "permanent hangs must trip the breaker:\n{}",
        report.render()
    );
    assert!(
        report.stats.cpu_fallbacks + report.stats.cpu_executions > 0,
        "work must finish on the CPU lifeboat"
    );
    assert_eq!(report.verified, report.submitted, "{}", report.render());
    assert_eq!(report.mismatched, 0);
    assert!(report.energy_j > 0.0, "GPU system energy (incl. idle burn)");
    assert!(
        report.cpu_energy_j > 0.0,
        "CPU fallback work must cost energy"
    );
}

#[test]
fn frontend_deaths_drain_pending_work() {
    let report = soak::run(&SoakConfig {
        seed: 17,
        processes: 4,
        requests_per_process: 8,
        sync_every: 4,
        faults: FaultConfig {
            frontend_death_rate: 0.5,
            ..FaultConfig::quiet()
        },
        ..SoakConfig::default()
    });
    assert!(report.frontend_deaths > 0, "{}", report.render());
    assert!(report.dropped > 0, "deaths mid-batch must abandon requests");
    assert!(report.stats.reaped_frontends > 0);
    assert!(report.stats.drained_requests > 0);
    assert!(report.balanced(), "{}", report.render());
    assert_eq!(report.mismatched, 0);
}

/// Submit one AES instance; returns (frontend, output ptr, expected).
fn submit_aes(
    rt: &Runtime,
    aes: &AesWorkload,
    seed: u64,
) -> (Frontend, ewc_gpu::DevicePtr, Vec<u8>) {
    let mut fe = rt.connect();
    let (args, bufs) = aes.build_args(&mut fe, seed).unwrap();
    fe.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe.setup_argument(*a).unwrap();
    }
    fe.launch("encryption").unwrap();
    (fe, bufs.output, aes.expected_output(seed))
}

#[test]
fn breaker_half_opens_and_recovers_when_faults_clear() {
    let gpu_cfg = GpuConfig::tesla_c1060();
    let aes = AesWorkload::fig7(&gpu_cfg);
    let plan = SharedFaultPlan::new(
        1,
        FaultConfig {
            hang_rate: 1.0,
            ..FaultConfig::quiet()
        },
    );
    let rt = Runtime::builder(RuntimeConfig {
        force_gpu: true,
        resilience: ResiliencePolicy {
            max_gpu_retries: 0,
            breaker_threshold: 1,
            breaker_cooldown_s: 1e-3,
            ..ResiliencePolicy::default()
        },
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::new(AesWorkload::fig7(&gpu_cfg)))
    .template(Template::homogeneous("encryption"))
    .device_faults(Arc::new(plan.clone()))
    .build();

    // Every launch hangs: the breaker trips and the work lands on the
    // CPU — correctly.
    let (fe1, out1, expect1) = submit_aes(&rt, &aes, 1);
    fe1.sync().unwrap();
    assert_eq!(
        fe1.memcpy_d2h(out1, 0, expect1.len() as u64).unwrap(),
        expect1
    );

    // The device heals. The next group arrives after the (tiny)
    // cooldown: the breaker half-opens, probes the GPU, succeeds, and
    // closes again.
    plan.set_config(FaultConfig::quiet());
    let (fe2, out2, expect2) = submit_aes(&rt, &aes, 2);
    fe2.sync().unwrap();
    assert_eq!(
        fe2.memcpy_d2h(out2, 0, expect2.len() as u64).unwrap(),
        expect2
    );

    drop((fe1, fe2));
    let report = rt.shutdown();
    assert!(report.stats.breaker_trips >= 1, "stats: {:?}", report.stats);
    assert!(
        report.stats.cpu_fallbacks >= 1,
        "first instance must fall back to CPU"
    );
    assert!(
        report.stats.launches >= 1,
        "the healed GPU must serve the probe group"
    );
    assert_eq!(report.stats.failed_kernels, 0);
}
