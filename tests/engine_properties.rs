//! Randomized invariants over the simulators.
//!
//! These were proptest properties in spirit; offline we drive them with
//! the workspace's own deterministic [`SimRng`] so every run explores
//! the same seeded case set with zero external dependencies.

use ewc_cpu::{CpuConfig, CpuEngine, CpuTask};
use ewc_gpu::{
    BlockCost, ConsolidatedGrid, DispatchPolicy, ExecutionEngine, GpuConfig, Grid, KernelDesc,
    SimRng,
};
use ewc_workloads::aes::{encrypt_ecb, DEMO_KEY};
use ewc_workloads::sort::bitonic_sort;

const CASES: usize = 64;

fn random_kernel(rng: &mut SimRng) -> KernelDesc {
    let tpb = [32u32, 64, 128, 256, 512][rng.range_usize(0, 5)];
    // Keep the block schedulable: its register footprint must fit the
    // 16 K register file.
    let regs = rng.range_u32(8, 40).min(16_384 / tpb).max(1);
    KernelDesc::builder("prop")
        .threads_per_block(tpb)
        .regs_per_thread(regs)
        .shared_mem_per_block(rng.range_u32(0, 8192))
        .comp_insts(rng.range_f64(1e3, 1e7))
        .coalesced_mem(rng.range_f64(0.0, 1e4))
        .uncoalesced_mem(rng.range_f64(0.0, 500.0))
        .build()
}

fn random_grid(rng: &mut SimRng) -> Grid {
    let segments = rng.range_usize(1, 4);
    let mut g = ConsolidatedGrid::new();
    for _ in 0..segments {
        let desc = random_kernel(rng);
        let blocks = rng.range_u32(1, 40);
        g = g.add(Grid::single(desc, blocks));
    }
    g.build()
}

const POLICIES: [DispatchPolicy; 3] = [
    DispatchPolicy::PaperRedistribution,
    DispatchPolicy::StaticRoundRobin,
    DispatchPolicy::GreedyGlobal,
];

/// Every block retires exactly once, whatever the policy.
#[test]
fn all_blocks_retire() {
    let mut rng = SimRng::seed_from_u64(0x5eed_0001);
    let engine = ExecutionEngine::new(GpuConfig::tesla_c1060());
    for case in 0..CASES {
        let grid = random_grid(&mut rng);
        let policy = POLICIES[rng.range_usize(0, 3)];
        let out = engine.run(&grid, policy).unwrap();
        assert_eq!(
            out.trace.events().len() as u32,
            grid.total_blocks(),
            "case {case}: every block must produce exactly one event"
        );
        // Each block appears once.
        let mut seen: Vec<u32> = out.trace.events().iter().map(|e| e.coord.global).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len() as u32,
            grid.total_blocks(),
            "case {case}: duplicate blocks"
        );
    }
}

fn longest_and_serial(grid: &Grid, cfg: &GpuConfig) -> (f64, f64) {
    let longest = grid
        .segments()
        .iter()
        .map(|s| BlockCost::derive(&s.desc, cfg).t_solo_s)
        .fold(0.0, f64::max);
    let serial_all: f64 = grid
        .segments()
        .iter()
        .map(|s| f64::from(s.blocks) * BlockCost::derive(&s.desc, cfg).t_solo_s)
        .sum();
    (longest, serial_all)
}

/// The makespan is bounded below by the longest solo block and above by
/// the strictly serial execution of everything on one SM.
#[test]
fn makespan_bounds() {
    let cfg = GpuConfig::tesla_c1060();
    let engine = ExecutionEngine::new(cfg.clone());
    let mut rng = SimRng::seed_from_u64(0x5eed_0002);
    for case in 0..CASES {
        let grid = random_grid(&mut rng);
        let out = engine.run(&grid, DispatchPolicy::default()).unwrap();
        let (longest, serial_all) = longest_and_serial(&grid, &cfg);
        assert!(out.elapsed_s >= longest * (1.0 - 1e-9), "case {case}");
        assert!(
            out.elapsed_s <= serial_all * (1.0 + 1e-9) + 1e-12,
            "case {case}"
        );
    }
}

/// Counter totals equal the sum of per-block costs (work conservation).
#[test]
fn counters_conserve_work() {
    let cfg = GpuConfig::tesla_c1060();
    let engine = ExecutionEngine::new(cfg.clone());
    let mut rng = SimRng::seed_from_u64(0x5eed_0003);
    for case in 0..CASES {
        let grid = random_grid(&mut rng);
        let out = engine.run(&grid, DispatchPolicy::default()).unwrap();
        let expect_comp: f64 = grid
            .segments()
            .iter()
            .map(|s| f64::from(s.blocks) * BlockCost::derive(&s.desc, &cfg).comp_ops)
            .sum();
        let expect_mem: f64 = grid
            .segments()
            .iter()
            .map(|s| f64::from(s.blocks) * BlockCost::derive(&s.desc, &cfg).mem_requests)
            .sum();
        assert!(
            (out.counters.comp_ops - expect_comp).abs() <= expect_comp * 1e-6 + 1e-6,
            "case {case}: compute ops not conserved"
        );
        assert!(
            (out.counters.mem_requests - expect_mem).abs() <= expect_mem * 1e-6 + 1e-6,
            "case {case}: memory requests not conserved"
        );
    }
}

/// Every dispatch policy stays inside the physical envelope: no faster
/// than the longest solo block, no slower than running every block back
/// to back on one SM. (No ordering between the policies themselves is
/// asserted — greedy avoids the paper policy's critical-SM pile-ups but
/// can co-schedule a straggler into contention the idle-only
/// redistribution would have dodged; both directions occur on
/// adversarial grids.)
#[test]
fn all_policies_within_physical_envelope() {
    let cfg = GpuConfig::tesla_c1060();
    let engine = ExecutionEngine::new(cfg.clone());
    let mut rng = SimRng::seed_from_u64(0x5eed_0004);
    for case in 0..CASES {
        let grid = random_grid(&mut rng);
        let (longest, serial_all) = longest_and_serial(&grid, &cfg);
        for policy in POLICIES {
            let t = engine.run(&grid, policy).unwrap().elapsed_s;
            assert!(
                t >= longest * (1.0 - 1e-9),
                "case {case} {policy:?}: {t} < longest {longest}"
            );
            assert!(
                t <= serial_all * (1.0 + 1e-9) + 1e-12,
                "case {case} {policy:?}: {t} > serial {serial_all}"
            );
        }
    }
}

/// The activity profile is contiguous and covers the makespan.
#[test]
fn activity_profile_is_contiguous() {
    let engine = ExecutionEngine::new(GpuConfig::tesla_c1060());
    let mut rng = SimRng::seed_from_u64(0x5eed_0005);
    for case in 0..CASES {
        let grid = random_grid(&mut rng);
        let out = engine.run(&grid, DispatchPolicy::default()).unwrap();
        let mut t = 0.0;
        for iv in &out.intervals {
            assert!(
                (iv.start_s - t).abs() < 1e-9,
                "case {case}: gap in activity profile"
            );
            assert!(iv.dur_s >= 0.0, "case {case}: negative interval");
            t += iv.dur_s;
        }
        assert!(
            (t - out.elapsed_s).abs() < 1e-9,
            "case {case}: profile misses makespan"
        );
    }
}

/// CPU engine: makespan bounds under the water-filling scheduler.
#[test]
fn cpu_makespan_bounds() {
    let mut cfg = CpuConfig::xeon_e5520_x2();
    cfg.context_switch_s = 0.0;
    cfg.cache_pressure_slope = 0.0;
    let engine = CpuEngine::new(cfg.clone());
    let mut rng = SimRng::seed_from_u64(0x5eed_0006);
    for case in 0..CASES {
        let n = rng.range_usize(1, 12);
        let works: Vec<(f64, u32, u64)> = (0..n)
            .map(|_| {
                (
                    rng.range_f64(0.1, 20.0),
                    rng.range_u32(1, 8),
                    rng.range_u64(0, 64 << 20),
                )
            })
            .collect();
        let tasks: Vec<CpuTask> = works
            .iter()
            .map(|(w, p, ws)| CpuTask::new("t", *w, *p, *ws))
            .collect();
        let out = engine.run(&tasks);
        let total_work: f64 = works.iter().map(|(w, ..)| *w).sum();
        let longest = tasks
            .iter()
            .map(|t| t.solo_time_s(cfg.cores))
            .fold(0.0, f64::max);
        assert!(
            out.makespan_s >= total_work / f64::from(cfg.cores) - 1e-9,
            "case {case}"
        );
        assert!(out.makespan_s >= longest - 1e-9, "case {case}");
        assert!(
            out.makespan_s <= total_work + 1e-9,
            "case {case}: worse than one core"
        );
        // Every task finishes.
        for f in &out.finish_s {
            assert!(*f > 0.0 && *f <= out.makespan_s + 1e-9, "case {case}");
        }
    }
}

/// AES-ECB is deterministic and block-local.
#[test]
fn aes_ecb_block_locality() {
    let mut rng = SimRng::seed_from_u64(0x5eed_0007);
    for case in 0..CASES {
        let n = rng.range_usize(1, 16);
        let mut flat = vec![0u8; n * 16];
        rng.fill_bytes(&mut flat);
        let whole = encrypt_ecb(&flat, &DEMO_KEY);
        for i in 0..n {
            let alone = encrypt_ecb(&flat[i * 16..(i + 1) * 16], &DEMO_KEY);
            assert_eq!(
                &whole[i * 16..(i + 1) * 16],
                &alone[..],
                "case {case}: block {i} depends on its neighbours"
            );
        }
    }
}

/// Bitonic sort sorts (against the standard library).
#[test]
fn bitonic_matches_std_sort() {
    let mut rng = SimRng::seed_from_u64(0x5eed_0008);
    for case in 0..CASES {
        let n = rng.range_usize(0, 300);
        let mut v: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        bitonic_sort(&mut v);
        assert_eq!(v, expect, "case {case}");
    }
}
