//! Property-based invariants over the simulators (proptest).

use ewc_cpu::{CpuConfig, CpuEngine, CpuTask};
use ewc_gpu::{
    BlockCost, ConsolidatedGrid, DispatchPolicy, ExecutionEngine, GpuConfig, Grid, KernelDesc,
};
use ewc_workloads::aes::{encrypt_ecb, DEMO_KEY};
use ewc_workloads::sort::bitonic_sort;
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (
        prop_oneof![Just(32u32), Just(64), Just(128), Just(256), Just(512)],
        8u32..40,
        0u32..8192,
        1e3..1e7f64,
        0.0..1e4f64,
        0.0..500.0f64,
    )
        .prop_map(|(tpb, regs, smem, comp, coal, uncoal)| {
            // Keep the block schedulable: its register footprint must fit
            // the 16 K register file.
            let regs = regs.min(16_384 / tpb);
            KernelDesc::builder("prop")
                .threads_per_block(tpb)
                .regs_per_thread(regs.max(1))
                .shared_mem_per_block(smem)
                .comp_insts(comp)
                .coalesced_mem(coal)
                .uncoalesced_mem(uncoal)
                .build()
        })
}

fn arb_grid() -> impl Strategy<Value = Grid> {
    proptest::collection::vec((arb_kernel(), 1u32..40), 1..4).prop_map(|parts| {
        let mut g = ConsolidatedGrid::new();
        for (desc, blocks) in parts {
            g = g.add(Grid::single(desc, blocks));
        }
        g.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every block retires exactly once, whatever the policy.
    #[test]
    fn all_blocks_retire(grid in arb_grid(), policy_idx in 0usize..3) {
        let policy = [
            DispatchPolicy::PaperRedistribution,
            DispatchPolicy::StaticRoundRobin,
            DispatchPolicy::GreedyGlobal,
        ][policy_idx];
        let engine = ExecutionEngine::new(GpuConfig::tesla_c1060());
        let out = engine.run(&grid, policy).unwrap();
        prop_assert_eq!(out.trace.events().len() as u32, grid.total_blocks());
        // Each block appears once.
        let mut seen: Vec<u32> = out.trace.events().iter().map(|e| e.coord.global).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len() as u32, grid.total_blocks());
    }

    /// The makespan is bounded below by the longest solo block and above
    /// by the strictly serial execution of everything on one SM.
    #[test]
    fn makespan_bounds(grid in arb_grid()) {
        let cfg = GpuConfig::tesla_c1060();
        let engine = ExecutionEngine::new(cfg.clone());
        let out = engine.run(&grid, DispatchPolicy::default()).unwrap();
        let longest = grid
            .segments()
            .iter()
            .map(|s| BlockCost::derive(&s.desc, &cfg).t_solo_s)
            .fold(0.0, f64::max);
        let serial_all: f64 = grid
            .segments()
            .iter()
            .map(|s| f64::from(s.blocks) * BlockCost::derive(&s.desc, &cfg).t_solo_s)
            .sum();
        prop_assert!(out.elapsed_s >= longest * (1.0 - 1e-9));
        prop_assert!(out.elapsed_s <= serial_all * (1.0 + 1e-9) + 1e-12);
    }

    /// Counter totals equal the sum of per-block costs (work conservation).
    #[test]
    fn counters_conserve_work(grid in arb_grid()) {
        let cfg = GpuConfig::tesla_c1060();
        let engine = ExecutionEngine::new(cfg.clone());
        let out = engine.run(&grid, DispatchPolicy::default()).unwrap();
        let expect_comp: f64 = grid
            .segments()
            .iter()
            .map(|s| f64::from(s.blocks) * BlockCost::derive(&s.desc, &cfg).comp_ops)
            .sum();
        let expect_mem: f64 = grid
            .segments()
            .iter()
            .map(|s| f64::from(s.blocks) * BlockCost::derive(&s.desc, &cfg).mem_requests)
            .sum();
        prop_assert!((out.counters.comp_ops - expect_comp).abs() <= expect_comp * 1e-6 + 1e-6);
        prop_assert!((out.counters.mem_requests - expect_mem).abs() <= expect_mem * 1e-6 + 1e-6);
    }

    /// Every dispatch policy stays inside the physical envelope: no
    /// faster than the longest solo block, no slower than running every
    /// block back to back on one SM. (No ordering between the policies
    /// themselves is asserted — greedy avoids the paper policy's
    /// critical-SM pile-ups but can co-schedule a straggler into
    /// contention the idle-only redistribution would have dodged; both
    /// directions occur on adversarial grids.)
    #[test]
    fn all_policies_within_physical_envelope(grid in arb_grid()) {
        let cfg = GpuConfig::tesla_c1060();
        let engine = ExecutionEngine::new(cfg.clone());
        let longest = grid
            .segments()
            .iter()
            .map(|s| BlockCost::derive(&s.desc, &cfg).t_solo_s)
            .fold(0.0, f64::max);
        let serial_all: f64 = grid
            .segments()
            .iter()
            .map(|s| f64::from(s.blocks) * BlockCost::derive(&s.desc, &cfg).t_solo_s)
            .sum();
        for policy in [
            DispatchPolicy::PaperRedistribution,
            DispatchPolicy::StaticRoundRobin,
            DispatchPolicy::GreedyGlobal,
        ] {
            let t = engine.run(&grid, policy).unwrap().elapsed_s;
            prop_assert!(t >= longest * (1.0 - 1e-9), "{policy:?}: {t} < longest {longest}");
            prop_assert!(
                t <= serial_all * (1.0 + 1e-9) + 1e-12,
                "{policy:?}: {t} > serial {serial_all}"
            );
        }
    }

    /// The activity profile is contiguous and covers the makespan.
    #[test]
    fn activity_profile_is_contiguous(grid in arb_grid()) {
        let engine = ExecutionEngine::new(GpuConfig::tesla_c1060());
        let out = engine.run(&grid, DispatchPolicy::default()).unwrap();
        let mut t = 0.0;
        for iv in &out.intervals {
            prop_assert!((iv.start_s - t).abs() < 1e-9);
            prop_assert!(iv.dur_s >= 0.0);
            t += iv.dur_s;
        }
        prop_assert!((t - out.elapsed_s).abs() < 1e-9);
    }

    /// CPU engine: makespan bounds under the water-filling scheduler.
    #[test]
    fn cpu_makespan_bounds(
        works in proptest::collection::vec((0.1f64..20.0, 1u32..8, 0u64..(64 << 20)), 1..12),
    ) {
        let mut cfg = CpuConfig::xeon_e5520_x2();
        cfg.context_switch_s = 0.0;
        cfg.cache_pressure_slope = 0.0;
        let engine = CpuEngine::new(cfg.clone());
        let tasks: Vec<CpuTask> =
            works.iter().map(|(w, p, ws)| CpuTask::new("t", *w, *p, *ws)).collect();
        let out = engine.run(&tasks);
        let total_work: f64 = works.iter().map(|(w, ..)| *w).sum();
        let longest = tasks
            .iter()
            .map(|t| t.solo_time_s(cfg.cores))
            .fold(0.0, f64::max);
        prop_assert!(out.makespan_s >= total_work / f64::from(cfg.cores) - 1e-9);
        prop_assert!(out.makespan_s >= longest - 1e-9);
        prop_assert!(out.makespan_s <= total_work + 1e-9, "never worse than one core");
        // Every task finishes.
        for f in &out.finish_s {
            prop_assert!(*f > 0.0 && *f <= out.makespan_s + 1e-9);
        }
    }

    /// AES-ECB is deterministic and block-local.
    #[test]
    fn aes_ecb_block_locality(blocks in proptest::collection::vec(any::<[u8; 16]>(), 1..16)) {
        let flat: Vec<u8> = blocks.iter().flatten().copied().collect();
        let whole = encrypt_ecb(&flat, &DEMO_KEY);
        for (i, b) in blocks.iter().enumerate() {
            let alone = encrypt_ecb(b, &DEMO_KEY);
            prop_assert_eq!(&whole[i * 16..(i + 1) * 16], &alone[..]);
        }
    }

    /// Bitonic sort sorts (against the standard library).
    #[test]
    fn bitonic_matches_std_sort(mut v in proptest::collection::vec(any::<u32>(), 0..300)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        bitonic_sort(&mut v);
        prop_assert_eq!(v, expect);
    }
}
