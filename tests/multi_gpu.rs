//! Multi-GPU backend integration: context↔device binding, per-device
//! grouping, cross-device overlap, and correctness.

use std::sync::Arc;

use ewc_core::{Runtime, RuntimeConfig, Template};
use ewc_gpu::GpuConfig;
use ewc_workloads::{AesWorkload, MonteCarloWorkload, Workload};

fn runtime(num_gpus: u32, threshold: u32) -> (Runtime, Arc<dyn Workload>, Arc<dyn Workload>) {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let mc: Arc<dyn Workload> = Arc::new(MonteCarloWorkload::tables78(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        num_gpus,
        threshold_factor: threshold,
        force_gpu: true,
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&aes))
    .workload("montecarlo", Arc::clone(&mc))
    .template(Template::homogeneous("encryption"))
    .template(Template::homogeneous("montecarlo"))
    .build();
    (rt, aes, mc)
}

fn submit(
    rt: &Runtime,
    name: &str,
    w: &Arc<dyn Workload>,
    seed: u64,
) -> (
    ewc_core::Frontend,
    ewc_workloads::registry::DeviceBuffers,
    Vec<u8>,
) {
    let mut fe = rt.connect();
    let (args, bufs) = w.build_args(&mut fe, seed).expect("build");
    fe.configure_call(w.blocks(), w.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe.setup_argument(*a).unwrap();
    }
    fe.launch(name).expect("launch");
    (fe, bufs, w.expected_output(seed))
}

#[test]
fn results_correct_across_devices() {
    let (rt, aes, mc) = runtime(2, 50);
    let mut sessions = Vec::new();
    for seed in 0..8u64 {
        let (name, w) = if seed % 2 == 0 {
            ("encryption", &aes)
        } else {
            ("montecarlo", &mc)
        };
        sessions.push(submit(&rt, name, w, seed));
    }
    sessions[0].0.sync().unwrap();
    for (fe, bufs, expect) in &sessions {
        let got = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
        assert_eq!(&got, expect);
    }
    let report = rt.shutdown();
    // Contexts alternate devices; with two workload families the backend
    // must have formed at least two groups (one per device).
    assert!(
        report.stats.records.len() >= 2,
        "{:?}",
        report.stats.records
    );
    let total: usize = report.stats.records.iter().map(|r| r.kernels.len()).sum();
    assert_eq!(total, 8);
}

#[test]
fn two_devices_overlap_the_long_kernels() {
    // Two MonteCarlo instances (43.2 s each): on one device their group
    // consolidates to ~43 s anyway; force them apart by alternating
    // contexts across two devices and running them as separate groups
    // (homogeneous template matches per device).
    let one = {
        let (rt, _, mc) = runtime(1, 50);
        let a = submit(&rt, "montecarlo", &mc, 0);
        let b = submit(&rt, "montecarlo", &mc, 1);
        a.0.sync().unwrap();
        let _ = (a, b);
        rt.shutdown()
    };
    let two = {
        let (rt, _, mc) = runtime(2, 50);
        let a = submit(&rt, "montecarlo", &mc, 0);
        let b = submit(&rt, "montecarlo", &mc, 1);
        a.0.sync().unwrap();
        let _ = (a, b);
        rt.shutdown()
    };
    // Both complete in ~one kernel time; the two-device run must not be
    // slower, and must have issued one launch per device.
    assert!(
        two.elapsed_s <= one.elapsed_s * 1.05,
        "{} vs {}",
        two.elapsed_s,
        one.elapsed_s
    );
    assert_eq!(two.stats.launches, 2);
    assert_eq!(
        one.stats.launches, 1,
        "single device consolidates into one launch"
    );
}

#[test]
fn energy_accounts_every_device() {
    let (rt, aes, _) = runtime(4, 50);
    let mut sessions = Vec::new();
    for seed in 0..4u64 {
        sessions.push(submit(&rt, "encryption", &aes, seed));
    }
    sessions[0].0.sync().unwrap();
    let report = rt.shutdown();
    // The idle floor plus three extra cards' static draw over the whole
    // session is a hard lower bound.
    let sys = ewc_energy::GpuSystemPower::tesla_system();
    let floor = (sys.idle_w + 3.0 * sys.extra_gpu_static_w) * report.elapsed_s;
    assert!(
        report.energy.energy_j > floor,
        "energy {} must exceed the 4-GPU idle floor {}",
        report.energy.energy_j,
        floor
    );
}

#[test]
fn single_gpu_remains_the_default_behaviour() {
    let (rt, aes, _) = runtime(1, 10);
    let s = submit(&rt, "encryption", &aes, 3);
    s.0.sync().unwrap();
    let got = s.0.memcpy_d2h(s.1.output, 0, s.1.output_len).unwrap();
    assert_eq!(got, s.2);
}
