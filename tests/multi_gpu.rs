//! Multi-GPU backend integration: context↔device binding, per-device
//! grouping, cross-device overlap, and correctness.

use std::sync::Arc;

use ewc_core::{Runtime, RuntimeConfig, Template};
use ewc_gpu::GpuConfig;
use ewc_workloads::{AesWorkload, MonteCarloWorkload, Workload};

fn runtime(num_gpus: u32, threshold: u32) -> (Runtime, Arc<dyn Workload>, Arc<dyn Workload>) {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let mc: Arc<dyn Workload> = Arc::new(MonteCarloWorkload::tables78(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        num_gpus,
        threshold_factor: threshold,
        force_gpu: true,
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&aes))
    .workload("montecarlo", Arc::clone(&mc))
    .template(Template::homogeneous("encryption"))
    .template(Template::homogeneous("montecarlo"))
    .build();
    (rt, aes, mc)
}

fn submit(
    rt: &Runtime,
    name: &str,
    w: &Arc<dyn Workload>,
    seed: u64,
) -> (
    ewc_core::Frontend,
    ewc_workloads::registry::DeviceBuffers,
    Vec<u8>,
) {
    let mut fe = rt.connect();
    let (args, bufs) = w.build_args(&mut fe, seed).expect("build");
    fe.configure_call(w.blocks(), w.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe.setup_argument(*a).unwrap();
    }
    fe.launch(name).expect("launch");
    (fe, bufs, w.expected_output(seed))
}

#[test]
fn results_correct_across_devices() {
    let (rt, aes, mc) = runtime(2, 50);
    let mut sessions = Vec::new();
    for seed in 0..8u64 {
        let (name, w) = if seed % 2 == 0 {
            ("encryption", &aes)
        } else {
            ("montecarlo", &mc)
        };
        sessions.push(submit(&rt, name, w, seed));
    }
    sessions[0].0.sync().unwrap();
    for (fe, bufs, expect) in &sessions {
        let got = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
        assert_eq!(&got, expect);
    }
    let report = rt.shutdown();
    // Contexts alternate devices; with two workload families the backend
    // must have formed at least two groups (one per device).
    assert!(
        report.stats.records.len() >= 2,
        "{:?}",
        report.stats.records
    );
    let total: usize = report.stats.records.iter().map(|r| r.kernels.len()).sum();
    assert_eq!(total, 8);
}

#[test]
fn two_devices_overlap_the_long_kernels() {
    // Two MonteCarlo instances (43.2 s each): on one device their group
    // consolidates to ~43 s anyway; force them apart by alternating
    // contexts across two devices and running them as separate groups
    // (homogeneous template matches per device).
    let one = {
        let (rt, _, mc) = runtime(1, 50);
        let a = submit(&rt, "montecarlo", &mc, 0);
        let b = submit(&rt, "montecarlo", &mc, 1);
        a.0.sync().unwrap();
        let _ = (a, b);
        rt.shutdown()
    };
    let two = {
        let (rt, _, mc) = runtime(2, 50);
        let a = submit(&rt, "montecarlo", &mc, 0);
        let b = submit(&rt, "montecarlo", &mc, 1);
        a.0.sync().unwrap();
        let _ = (a, b);
        rt.shutdown()
    };
    // Both complete in ~one kernel time; the two-device run must not be
    // slower, and must have issued one launch per device.
    assert!(
        two.elapsed_s <= one.elapsed_s * 1.05,
        "{} vs {}",
        two.elapsed_s,
        one.elapsed_s
    );
    assert_eq!(two.stats.launches, 2);
    assert_eq!(
        one.stats.launches, 1,
        "single device consolidates into one launch"
    );
}

#[test]
fn energy_accounts_every_device() {
    let (rt, aes, _) = runtime(4, 50);
    let mut sessions = Vec::new();
    for seed in 0..4u64 {
        sessions.push(submit(&rt, "encryption", &aes, seed));
    }
    sessions[0].0.sync().unwrap();
    let report = rt.shutdown();
    // The idle floor plus three extra cards' static draw over the whole
    // session is a hard lower bound.
    let sys = ewc_energy::GpuSystemPower::tesla_system();
    let floor = (sys.idle_w + 3.0 * sys.extra_gpu_static_w) * report.elapsed_s;
    assert!(
        report.energy.energy_j > floor,
        "energy {} must exceed the 4-GPU idle floor {}",
        report.energy.energy_j,
        floor
    );
}

#[test]
fn single_gpu_remains_the_default_behaviour() {
    let (rt, aes, _) = runtime(1, 10);
    let s = submit(&rt, "encryption", &aes, 3);
    s.0.sync().unwrap();
    let got = s.0.memcpy_d2h(s.1.output, 0, s.1.output_len).unwrap();
    assert_eq!(got, s.2);
}

// ---------------------------------------------------------------------
// Heterogeneous fleet: placement policies, the power cap, and
// per-device breakers with drain/migrate.
// ---------------------------------------------------------------------

use ewc_core::ResiliencePolicy;
use ewc_faults::{FaultConfig, SharedFaultPlan};
use ewc_fleet::{FleetConfig, PlacementReason, PolicyKind};

/// Run 12 verified AES instances on a 4-device heterogeneous fleet
/// under `fleet_cfg`; returns the shutdown report. Runs in virtual
/// span mode: the replay assertions below compare whole
/// [`ewc_core::BackendStats`] byte-for-byte, and only the virtual
/// clock guarantees that — in wall-clock mode the flush timestamp can
/// shift by one `channel_latency_s` charge depending on where the
/// daemon's `try_recv` batch boundary lands under OS scheduling.
fn fleet_session(fleet_cfg: FleetConfig) -> ewc_core::RuntimeReport {
    use ewc_exec::VirtualClock;
    use ewc_telemetry::TelemetrySink;

    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        threshold_factor: 3,
        force_gpu: true,
        noise_seed: Some(7),
        fleet: Some(fleet_cfg),
        ..RuntimeConfig::default()
    })
    .telemetry(TelemetrySink::enabled_virtual(VirtualClock::new()))
    .workload("encryption", Arc::clone(&aes))
    .template(Template::homogeneous("encryption"))
    .build();
    let mut sessions = Vec::new();
    for seed in 0..12u64 {
        sessions.push(submit(&rt, "encryption", &aes, seed));
    }
    sessions[0].0.sync().unwrap();
    for (fe, bufs, expect) in &sessions {
        let got = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
        assert_eq!(&got, expect);
    }
    drop(sessions);
    rt.shutdown()
}

#[test]
fn every_policy_replays_an_identical_placement_audit() {
    for kind in PolicyKind::ALL {
        let fleet = FleetConfig::heterogeneous(4).with_policy(kind);
        let a = fleet_session(fleet.clone());
        let b = fleet_session(fleet);
        assert!(
            !a.stats.placements.is_empty(),
            "{}: fleet runs must audit placements",
            kind.label()
        );
        assert_eq!(
            a.stats.placements,
            b.stats.placements,
            "{}: same seed must bind contexts identically",
            kind.label()
        );
        assert_eq!(
            a.stats,
            b.stats,
            "{}: whole backend must replay byte-identically",
            kind.label()
        );
    }
}

#[test]
fn power_cap_redirects_placements_under_the_fleet_ceiling() {
    // heterogeneous(4) idles at 40 + 22 + 64 + 40 = 166 W on the
    // placement proxy. A 180 W cap leaves no headroom for round robin's
    // first choice (c1060, +18.75 W marginal), so the governor must
    // redirect toward the low-power half-width card instead.
    let capped = fleet_session(
        FleetConfig::heterogeneous(4)
            .with_policy(PolicyKind::RoundRobin)
            .with_power_cap(180.0),
    );
    assert!(
        capped.stats.cap_redirects > 0,
        "the cap must have redirected placements: {:?}",
        capped.stats.placements
    );
    assert!(
        capped
            .stats
            .placements
            .iter()
            .any(|p| p.reason == PlacementReason::PowerCap),
        "{:?}",
        capped.stats.placements
    );
    let uncapped = fleet_session(FleetConfig::heterogeneous(4).with_policy(PolicyKind::RoundRobin));
    assert_eq!(uncapped.stats.cap_redirects, 0);
    assert_ne!(
        capped.stats.placements, uncapped.stats.placements,
        "the cap must actually change where contexts land"
    );
}

/// The drain/migrate scenario: device 0 is permanently sick, device 1 is
/// healthy. Returns the shutdown stats (for the replay assertion).
fn sick_device_session() -> ewc_core::BackendStats {
    let cfg = GpuConfig::tesla_c1060();
    let aes = AesWorkload::fig7(&cfg);
    let aes_dyn: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let plan = SharedFaultPlan::new(
        9,
        FaultConfig {
            hang_rate: 1.0,
            ..FaultConfig::quiet()
        },
    );
    let rt = Runtime::builder(RuntimeConfig {
        threshold_factor: 1_000_000, // flush only at syncs
        force_gpu: true,
        resilience: ResiliencePolicy {
            max_gpu_retries: 0,
            breaker_threshold: 1,
            breaker_cooldown_s: 1e6, // never closes within the run
            ..ResiliencePolicy::default()
        },
        fleet: Some(FleetConfig::homogeneous(2)),
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&aes_dyn))
    .template(Template::homogeneous("encryption"))
    .device_faults(Arc::new(plan.clone()))
    .device_fault_targets(vec![0])
    .build();

    // Round robin: ctx A → gpu0 (sick), ctx B → gpu1 (healthy).
    let (mut fe_a, bufs_a1, expect_a1) = submit(&rt, "encryption", &aes_dyn, 1);
    let (fe_b, bufs_b, expect_b) = submit(&rt, "encryption", &aes_dyn, 2);
    fe_a.sync().unwrap();
    fe_b.sync().unwrap();
    // gpu0's group hung, tripped its breaker, and fell back to the CPU;
    // gpu1's group must have launched normally despite that.
    assert_eq!(
        fe_a.memcpy_d2h(bufs_a1.output, 0, bufs_a1.output_len)
            .unwrap(),
        expect_a1
    );
    assert_eq!(
        fe_b.memcpy_d2h(bufs_b.output, 0, bufs_b.output_len)
            .unwrap(),
        expect_b
    );

    // Second round on ctx A: its device's breaker is open, so the
    // governor drains the context to gpu1 and the launch runs there —
    // the GPU path stays available instead of tripping to CPU again.
    let (args, bufs_a2) = aes.build_args(&mut fe_a, 3).unwrap();
    fe_a.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe_a.setup_argument(*a).unwrap();
    }
    fe_a.launch("encryption").unwrap();
    fe_a.sync().unwrap();
    assert_eq!(
        fe_a.memcpy_d2h(bufs_a2.output, 0, bufs_a2.output_len)
            .unwrap(),
        aes.expected_output(3)
    );
    // The first round's buffers moved with the context: reads through
    // the old frontend pointers must still return the right bytes.
    assert_eq!(
        fe_a.memcpy_d2h(bufs_a1.output, 0, bufs_a1.output_len)
            .unwrap(),
        expect_a1
    );

    drop((fe_a, fe_b));
    rt.shutdown().stats
}

#[test]
fn tripped_breaker_drains_contexts_to_the_healthy_device() {
    let stats = sick_device_session();
    assert!(stats.breaker_trips >= 1, "{stats:?}");
    assert!(stats.migrations >= 1, "ctx A must migrate: {stats:?}");
    assert!(stats.migrated_bytes > 0, "{stats:?}");
    assert!(
        stats.launches >= 2,
        "gpu1 must serve both ctx B and the migrated ctx A: {stats:?}"
    );
    assert_eq!(
        stats.cpu_fallbacks, 1,
        "only the pre-trip group goes to CPU: {stats:?}"
    );
    assert!(
        stats
            .placements
            .iter()
            .any(|p| p.reason == PlacementReason::Migrated && p.device == 1),
        "{:?}",
        stats.placements
    );
}

#[test]
fn drain_and_migrate_replays_byte_identically() {
    let a = sick_device_session();
    let b = sick_device_session();
    assert_eq!(a, b, "same seed must replay the whole drain/migrate run");
}
