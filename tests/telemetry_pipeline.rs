//! End-to-end telemetry: an enabled sink threaded through the runtime
//! must yield spans from the host and GPU tracks, a populated metrics
//! registry, a decision audit trail consistent with the backend stats,
//! and exporters whose output is valid (parseable) JSON with matched
//! event structure — the Chrome-trace golden test.

use std::sync::Arc;

use ewc_core::{Runtime, RuntimeConfig, Template};
use ewc_gpu::GpuConfig;
use ewc_telemetry::export::{chrome, jsonl, summary};
use ewc_telemetry::{json, TelemetrySink, TelemetrySnapshot};
use ewc_workloads::{MonteCarloWorkload, Workload};

/// Run `n` GPU-friendly Monte Carlo requests through a runtime wired to
/// `sink`, and return the shutdown report.
fn run_requests(n: u64, sink: TelemetrySink) -> ewc_core::RuntimeReport {
    let cfg = GpuConfig::tesla_c1060();
    let mc: Arc<dyn Workload> = Arc::new(MonteCarloWorkload::tables78(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        threshold_factor: 2,
        ..RuntimeConfig::default()
    })
    .workload("montecarlo", Arc::clone(&mc))
    .template(Template::homogeneous("montecarlo"))
    .telemetry(sink)
    .build();

    let mut sessions = Vec::new();
    for seed in 0..n {
        let mut fe = rt.connect();
        let (args, bufs) = mc.build_args(&mut fe, seed).expect("build");
        fe.configure_call(mc.blocks(), mc.desc().threads_per_block)
            .unwrap();
        for a in &args {
            fe.setup_argument(*a).unwrap();
        }
        fe.launch("montecarlo").expect("launch");
        sessions.push((fe, bufs));
    }
    sessions[0].0.sync().expect("drain");
    for (fe, bufs) in &sessions {
        let out = fe
            .memcpy_d2h(bufs.output, 0, bufs.output_len)
            .expect("readback");
        assert!(!out.is_empty());
    }
    rt.shutdown()
}

fn snapshot(n: u64) -> (ewc_core::RuntimeReport, TelemetrySnapshot) {
    let report = run_requests(n, TelemetrySink::enabled());
    let snap = report
        .telemetry
        .clone()
        .expect("enabled sink must snapshot");
    (report, snap)
}

#[test]
fn disabled_sink_yields_no_snapshot() {
    let report = run_requests(2, TelemetrySink::disabled());
    assert!(report.telemetry.is_none());
    // The run itself must be unaffected.
    assert!(report.elapsed_s > 0.0);
    assert_eq!(report.stats.kernel_outcomes.len(), 2);
}

#[test]
fn runtime_run_emits_host_and_gpu_spans() {
    let (report, snap) = snapshot(4);
    assert!(!snap.spans.is_empty());

    // Host side: every frontend API call that reached the backend shows
    // up as an rpc span on the backend lane (which additionally carries
    // the backend's own staging/coordination phases).
    let rpcs = snap
        .spans
        .iter()
        .filter(|s| {
            s.process == "host"
                && s.lane == "backend"
                && s.name != "staging"
                && s.name != "coordinate"
        })
        .count();
    // stats.messages additionally counts intra-group coordination
    // messages (leader election), which are not frontend API calls.
    assert!(
        rpcs as u64 <= report.stats.messages,
        "rpc spans ({rpcs}) cannot exceed backend messages ({})",
        report.stats.messages
    );
    let launches = snap
        .spans
        .iter()
        .filter(|s| s.lane == "backend" && s.name == "launch")
        .count();
    assert_eq!(launches, 4, "one launch rpc span per submitted request");
    assert!(
        snap.spans
            .iter()
            .any(|s| s.lane == "backend" && s.name == "staging"),
        "staging copies must appear on the backend lane"
    );
    assert!(
        snap.spans
            .iter()
            .any(|s| s.lane == "backend" && s.name == "coordinate"),
        "group coordination must appear on the backend lane"
    );

    // Request lifecycle: one "request" span per completed kernel, with
    // queued + execute children nested inside it.
    let requests: Vec<_> = snap.spans.iter().filter(|s| s.name == "request").collect();
    assert_eq!(requests.len(), report.stats.kernel_outcomes.len());
    for req in &requests {
        assert!(
            req.lane.starts_with("ctx"),
            "request spans live on context lanes"
        );
        let children: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.parent == Some(req.id))
            .collect();
        assert!(
            children.iter().any(|c| c.name == "queued"),
            "request {} lacks a queued child",
            req.id
        );
        assert!(
            children.iter().any(|c| c.name == "execute"),
            "request {} lacks an execute child",
            req.id
        );
        for c in children {
            assert!(
                c.start_s >= req.start_s - 1e-9,
                "child starts before parent"
            );
            assert!(c.end_s <= req.end_s + 1e-9, "child ends after parent");
        }
    }

    // GPU side: kernel + per-block SM spans, since Monte Carlo stays on
    // the device.
    assert!(
        report.stats.launches >= 1,
        "precondition: work must hit the GPU"
    );
    let gpu_streams = snap
        .spans
        .iter()
        .filter(|s| s.process == "gpu0" && s.lane == "stream")
        .count();
    assert_eq!(
        gpu_streams as u64, report.stats.launches,
        "one stream span per launch"
    );
    let sm_blocks = snap
        .spans
        .iter()
        .filter(|s| s.process == "gpu0" && s.lane.starts_with("sm"))
        .count();
    assert!(sm_blocks > 0, "per-block SM spans expected");

    // All spans have sane intervals.
    for s in &snap.spans {
        assert!(s.end_s >= s.start_s, "negative span {s:?}");
    }
    // Snapshot ordering is chronological.
    for w in snap.spans.windows(2) {
        assert!(w[0].start_s <= w[1].start_s);
    }
}

#[test]
fn metrics_and_audit_match_backend_stats() {
    let (report, snap) = snapshot(4);

    let h = snap
        .metrics
        .histogram("request_latency_s")
        .expect("latency histogram");
    assert_eq!(h.count(), report.stats.kernel_outcomes.len() as u64);
    // Histogram percentiles agree with the exact stats within bucket
    // resolution (8% growth factor), which is the point of replacing the
    // ad-hoc sort.
    let exact = report.stats.latency_summary();
    let approx = h.percentile(95.0);
    let exact95 = exact.percentile(95.0).unwrap();
    assert!(
        (approx - exact95).abs() <= exact95 * 0.09 + 1e-9,
        "histogram p95 {approx} vs exact {exact95}"
    );

    assert_eq!(
        snap.metrics.counter("gpu_launches"),
        report.stats.launches as f64
    );
    assert_eq!(
        snap.metrics.counter("groups"),
        report.stats.records.len() as f64
    );
    assert!(snap.metrics.counter("staged_bytes") > 0.0);
    assert!(snap.metrics.gauge("elapsed_s").is_some());

    // One audit record per decision, verdicts matching the stats records.
    assert_eq!(snap.audit.len(), report.stats.records.len());
    for (a, r) in snap.audit.iter().zip(&report.stats.records) {
        assert_eq!(
            a.verdict.label(),
            match r.choice {
                ewc_core::Choice::Consolidate => "consolidate",
                ewc_core::Choice::SerialGpu => "serial_gpu",
                ewc_core::Choice::Cpu => "cpu",
            }
        );
        assert_eq!(a.kernels.len(), r.kernels.len());
        assert!(
            !a.reason.is_empty(),
            "every verdict carries a justification"
        );
        let (t, e) = a.chosen().expect("chosen alternative recorded");
        assert!((t - r.predicted_time_s).abs() < 1e-9);
        assert!((e - r.predicted_energy_j).abs() < 1e-9);
    }

    // Power series sampled for the device.
    let power = snap.series.get("power_w/gpu0").expect("power series");
    assert!(power.len() >= 2);
    for w in power.windows(2) {
        assert!(w[0].0 < w[1].0, "samples strictly ordered in time");
    }
}

#[test]
fn chrome_trace_export_is_valid_and_matched() {
    let (_, snap) = snapshot(3);
    let trace = chrome::render(&snap);
    let doc = json::parse(&trace).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("top-level traceEvents array");

    let mut complete = 0usize;
    let mut metadata = 0usize;
    let mut counters = 0usize;
    let mut instants = 0usize;
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .expect("every event has ph");
        assert!(
            ev.get("name").and_then(|v| v.as_str()).is_some(),
            "every event has a name"
        );
        match ph {
            "X" => {
                complete += 1;
                let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("X has ts");
                let dur = ev.get("dur").and_then(|v| v.as_f64()).expect("X has dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                assert!(ev.get("pid").and_then(|v| v.as_f64()).is_some());
                assert!(ev.get("tid").and_then(|v| v.as_f64()).is_some());
            }
            "M" => metadata += 1,
            "C" => counters += 1,
            "i" => instants += 1,
            other => panic!("unexpected phase {other:?}"),
        }
    }

    // Golden structure: every span becomes exactly one complete event,
    // every series point one counter event, every audit entry one
    // instant event; metadata names every (process, lane) track plus
    // each process itself.
    assert_eq!(complete, snap.spans.len());
    assert_eq!(counters, snap.series.values().map(Vec::len).sum::<usize>());
    assert_eq!(instants, snap.audit.len());
    let mut procs: Vec<&str> = snap.spans.iter().map(|s| s.process.as_str()).collect();
    procs.sort_unstable();
    procs.dedup();
    let mut tracks: Vec<(&str, &str)> = snap
        .spans
        .iter()
        .map(|s| (s.process.as_str(), s.lane.as_str()))
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    assert_eq!(
        metadata,
        procs.len() + tracks.len(),
        "process_name + thread_name records"
    );
}

#[test]
fn jsonl_and_summary_exports_cover_the_snapshot() {
    let (_, snap) = snapshot(2);

    let lines = jsonl::render(&snap);
    let mut kinds = std::collections::BTreeSet::new();
    for line in lines.lines() {
        let v = json::parse(line).expect("every JSONL line parses alone");
        kinds.insert(
            v.get("type")
                .and_then(|k| k.as_str())
                .expect("line has a type")
                .to_string(),
        );
    }
    for expect in [
        "span",
        "counter",
        "gauge",
        "histogram",
        "sample",
        "decision",
    ] {
        assert!(
            kinds.contains(expect),
            "jsonl export missing type {expect:?}"
        );
    }

    let text = summary::render(&snap);
    for section in ["spans", "counters", "histograms", "decisions"] {
        assert!(
            text.to_lowercase().contains(section),
            "summary missing section {section:?}:\n{text}"
        );
    }
    assert!(text.contains("request_latency_s"));
}

#[test]
fn chrome_trace_render_is_byte_deterministic() {
    // Host-side span durations are wall-clock and request *grouping*
    // depends on real arrival timing, so two runs cannot be compared
    // byte for byte — but rendering one snapshot twice must be: any
    // map-iteration-order leak in the exporters would show up here as
    // flaky bytes. (Cross-run audit determinism is pinned by the
    // seeded soak replay test, which drives the simulated clock.)
    let (_, a) = snapshot(3);
    assert_eq!(chrome::render(&a), chrome::render(&a));
    assert_eq!(jsonl::render(&a), jsonl::render(&a));
}

#[test]
fn virtual_time_trace_exports_are_byte_identical_across_runs() {
    // Virtual span mode: the backend adopts the sink's executor clock
    // and batches per message, so *two separate runs* — not just two
    // renders of one snapshot — must export the same bytes. This is the
    // reproducibility contract of `TelemetrySink::enabled_virtual`; the
    // default wall-clock mode keeps the burst batching of a live daemon
    // (pinned by `chrome_trace_render_is_byte_deterministic` above).
    use ewc_bench::experiments::trace;
    use ewc_exec::VirtualClock;

    let arrivals = trace::generate(&trace::TraceSpec {
        requests: 10,
        mean_interarrival_s: 1.0,
        seed: 5,
    });
    let run = || {
        let sink = TelemetrySink::enabled_virtual(VirtualClock::new());
        let (_row, snap) = trace::replay_with(&arrivals, 4, 60.0, sink);
        snap.expect("virtual sink must snapshot")
    };
    let a = run();
    let b = run();
    assert_eq!(
        chrome::render(&a),
        chrome::render(&b),
        "virtual-time Chrome traces must be byte-identical across runs"
    );
    assert_eq!(jsonl::render(&a), jsonl::render(&b));
}
