//! Cross-crate energy accounting: the meter, the integrator, the thermal
//! model and the device activity profile must agree with each other.

use ewc_bench::{run_manual, run_serial, Mix};
use ewc_energy::{GpuSystemPower, PowerMeter};
use ewc_gpu::kernel::LaunchConfig;
use ewc_gpu::{GpuConfig, GpuDevice, KernelDesc};

fn compute_kernel(secs: f64) -> KernelDesc {
    let cfg = GpuConfig::tesla_c1060();
    KernelDesc::builder("k")
        .threads_per_block(256)
        .comp_insts(secs * cfg.clock_hz / (8.0 * cfg.warp_issue_cycles()))
        .build()
}

#[test]
fn meter_sampling_agrees_with_direct_integration() {
    let mut gpu = GpuDevice::new(GpuConfig::tesla_c1060());
    gpu.launch(&LaunchConfig::single(compute_kernel(5.0), 20))
        .unwrap();
    gpu.idle(1.0);
    gpu.launch(&LaunchConfig::single(compute_kernel(2.0), 40))
        .unwrap();

    let sys = GpuSystemPower::tesla_system();
    let direct = sys.integrate(gpu.activity(), gpu.now_s(), None);
    let timeline = sys.timeline(gpu.activity(), gpu.now_s(), None);
    let meter = PowerMeter::new(100.0);
    let sampled = meter.measure(&timeline, 0.0, gpu.now_s());
    let rel = (sampled.energy_j - direct.energy_j).abs() / direct.energy_j;
    assert!(
        rel < 0.02,
        "meter vs integral differ by {:.2}%",
        rel * 100.0
    );

    // The 1 Hz WattsUp is coarser but still lands within a few percent
    // on this multi-second window.
    let wattsup = PowerMeter::watts_up_pro().measure(&timeline, 0.0, gpu.now_s());
    let rel = (wattsup.energy_j - direct.energy_j).abs() / direct.energy_j;
    assert!(rel < 0.05, "WattsUp error {:.2}%", rel * 100.0);
}

#[test]
fn noise_seed_reproduces_measurements_exactly() {
    let cfg = GpuConfig::tesla_c1060();
    let mix = Mix::encryption(&cfg, 4);
    let a = run_manual(&mix);
    let b = run_manual(&mix);
    assert_eq!(a.time_s, b.time_s);
    assert_eq!(a.energy_j, b.energy_j, "same seed, same measurement");
}

#[test]
fn consolidated_power_higher_but_energy_lower() {
    // Consolidation raises average power (more SMs busy) yet lowers
    // total energy (far less time at the idle floor): the paper's core
    // energy argument.
    let cfg = GpuConfig::tesla_c1060();
    let mix = Mix::encryption(&cfg, 8);
    let serial = run_serial(&mix);
    let manual = run_manual(&mix);
    assert!(
        manual.avg_power_w > serial.avg_power_w,
        "consolidation packs more power"
    );
    assert!(
        manual.energy_j < 0.5 * serial.energy_j,
        "…but wins on energy"
    );
}

#[test]
fn energy_grows_with_serial_instance_count() {
    let cfg = GpuConfig::tesla_c1060();
    let mut last = 0.0;
    for n in [1u32, 2, 4, 8] {
        let r = run_serial(&Mix::encryption(&cfg, n));
        assert!(r.energy_j > last, "serial energy must grow with n");
        last = r.energy_j;
    }
}

#[test]
fn idle_gaps_cost_idle_energy() {
    let mut gpu = GpuDevice::new(GpuConfig::tesla_c1060());
    gpu.launch(&LaunchConfig::single(compute_kernel(1.0), 10))
        .unwrap();
    let busy_end = gpu.now_s();
    let sys = GpuSystemPower::tesla_system();
    let before = sys.integrate(gpu.activity(), busy_end, None);
    gpu.idle(10.0);
    let after = sys.integrate(gpu.activity(), gpu.now_s(), None);
    let delta = after.energy_j - before.energy_j;
    // Ten idle seconds ≈ 10 × idle power (plus residual leakage decay).
    assert!(delta >= 10.0 * sys.idle_w, "idle energy missing: {delta}");
    assert!(
        delta < 10.5 * sys.idle_w + 50.0,
        "idle energy overcharged: {delta}"
    );
}

#[test]
fn interval_coalescing_preserves_busy_time_and_energy() {
    // The engine coalesces adjacent activity intervals with identical
    // rates. Splitting every interval back apart must change neither
    // the profile's total duration nor the integrated system energy —
    // i.e. coalescing is invisible to the energy model.
    use ewc_gpu::counters::ActivityInterval;
    use ewc_gpu::{DispatchPolicy, ExecutionEngine, Grid};

    let engine = ExecutionEngine::new(GpuConfig::tesla_c1060());
    let out = engine
        .run(
            &Grid::single(compute_kernel(0.5), 240),
            DispatchPolicy::default(),
        )
        .unwrap();
    assert!(!out.intervals.is_empty());

    let mut split: Vec<ActivityInterval> = Vec::new();
    for iv in &out.intervals {
        let half = iv.dur_s / 2.0;
        split.push(ActivityInterval {
            start_s: iv.start_s,
            dur_s: half,
            rates: iv.rates,
        });
        split.push(ActivityInterval {
            start_s: iv.start_s + half,
            dur_s: iv.dur_s - half,
            rates: iv.rates,
        });
    }

    let total = |ivs: &[ActivityInterval]| ivs.iter().map(|i| i.dur_s).sum::<f64>();
    let busy_coalesced = total(&out.intervals);
    let busy_split = total(&split);
    assert!(
        (busy_coalesced - busy_split).abs() <= 1e-12 * busy_coalesced,
        "splitting must preserve total busy time: {busy_coalesced} vs {busy_split}"
    );

    let sys = GpuSystemPower::tesla_system();
    let a = sys.integrate(&out.intervals, out.elapsed_s, None);
    let b = sys.integrate(&split, out.elapsed_s, None);
    assert!(
        (a.energy_j - b.energy_j).abs() <= 1e-9 * a.energy_j,
        "coalescing must not change integrated energy: {} vs {}",
        a.energy_j,
        b.energy_j
    );
}
