//! The framework under real concurrency: frontends on separate OS
//! threads submitting simultaneously, exactly the multi-process pattern
//! the paper targets. Arrival order is nondeterministic; results and
//! accounting must not be.

use std::sync::Arc;
use std::thread;

use ewc_core::{Runtime, RuntimeConfig, Template};
use ewc_gpu::GpuConfig;
use ewc_workloads::{AesWorkload, SortWorkload, Workload};

fn runtime(threshold: u32) -> (Arc<Runtime>, Arc<dyn Workload>, Arc<dyn Workload>) {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let sort: Arc<dyn Workload> = Arc::new(SortWorkload::fig8(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        threshold_factor: threshold,
        force_gpu: true,
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&aes))
    .workload("sorting", Arc::clone(&sort))
    .template(Template::homogeneous("encryption"))
    .template(Template::homogeneous("sorting"))
    .build();
    (Arc::new(rt), aes, sort)
}

fn submit_and_verify(rt: &Runtime, name: &str, w: &Arc<dyn Workload>, seed: u64) {
    let mut fe = rt.connect();
    let (args, bufs) = w.build_args(&mut fe, seed).expect("build");
    fe.configure_call(w.blocks(), w.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe.setup_argument(*a).unwrap();
    }
    fe.launch(name).expect("launch");
    fe.sync().expect("sync");
    let out = fe
        .memcpy_d2h(bufs.output, 0, bufs.output_len)
        .expect("readback");
    assert_eq!(out, w.expected_output(seed), "user {seed} result corrupted");
}

#[test]
fn sixteen_concurrent_users_all_verify() {
    let (rt, aes, sort) = runtime(50);
    let mut threads = Vec::new();
    for user in 0..16u64 {
        let rt = Arc::clone(&rt);
        let (name, w) = if user % 2 == 0 {
            ("encryption", Arc::clone(&aes))
        } else {
            ("sorting", Arc::clone(&sort))
        };
        threads.push(thread::spawn(move || {
            submit_and_verify(&rt, name, &w, user)
        }));
    }
    for t in threads {
        t.join().expect("user thread");
    }
    let rt = Arc::into_inner(rt).expect("all users joined");
    let report = rt.shutdown();
    // Every kernel accounted for exactly once.
    let total: usize = report.stats.records.iter().map(|r| r.kernels.len()).sum();
    assert_eq!(total, 16);
}

#[test]
fn concurrent_submissions_hit_the_threshold_path() {
    let (rt, aes, _) = runtime(4);
    let mut threads = Vec::new();
    for user in 0..8u64 {
        let rt = Arc::clone(&rt);
        let w = Arc::clone(&aes);
        threads.push(thread::spawn(move || {
            submit_and_verify(&rt, "encryption", &w, user)
        }));
    }
    for t in threads {
        t.join().expect("user thread");
    }
    let rt = Arc::into_inner(rt).expect("all users joined");
    let report = rt.shutdown();
    let total: usize = report.stats.records.iter().map(|r| r.kernels.len()).sum();
    assert_eq!(total, 8);
    // At least one group was consolidated (the exact grouping depends on
    // arrival timing, which is the point of this test).
    assert!(
        report.stats.consolidated_launches >= 1,
        "records: {:?}",
        report.stats.records
    );
}

#[test]
fn frontends_can_interleave_api_calls() {
    // Two frontends interleaving configure/setup sequences must not
    // clobber each other's per-context state.
    let (rt, aes, sort) = runtime(50);
    let mut fe_a = rt.connect();
    let mut fe_b = rt.connect();
    let (args_a, bufs_a) = aes.build_args(&mut fe_a, 1).unwrap();
    let (args_b, bufs_b) = sort.build_args(&mut fe_b, 2).unwrap();
    fe_a.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    fe_b.configure_call(sort.blocks(), sort.desc().threads_per_block)
        .unwrap();
    for (a, b) in args_a.iter().zip(&args_b) {
        fe_a.setup_argument(*a).unwrap();
        fe_b.setup_argument(*b).unwrap();
    }
    fe_a.launch("encryption").unwrap();
    fe_b.launch("sorting").unwrap();
    fe_a.sync().unwrap();
    let out_a = fe_a
        .memcpy_d2h(bufs_a.output, 0, bufs_a.output_len)
        .unwrap();
    let out_b = fe_b
        .memcpy_d2h(bufs_b.output, 0, bufs_b.output_len)
        .unwrap();
    assert_eq!(out_a, aes.expected_output(1));
    assert_eq!(out_b, sort.expected_output(2));
    drop(rt);
}

#[test]
fn interleaving_without_batching_still_routes_arguments_correctly() {
    // With argument batching off, setup_argument goes through the shared
    // channel; per-context accumulation in the backend must keep the two
    // users' arguments apart.
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        argument_batching: false,
        force_gpu: true,
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&aes))
    .template(Template::homogeneous("encryption"))
    .build();
    let mut fe_a = rt.connect();
    let mut fe_b = rt.connect();
    let (args_a, bufs_a) = aes.build_args(&mut fe_a, 10).unwrap();
    let (args_b, bufs_b) = aes.build_args(&mut fe_b, 11).unwrap();
    fe_a.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    fe_b.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for (a, b) in args_a.iter().zip(&args_b) {
        fe_b.setup_argument(*b).unwrap();
        fe_a.setup_argument(*a).unwrap();
    }
    fe_a.launch("encryption").unwrap();
    fe_b.launch("encryption").unwrap();
    fe_a.sync().unwrap();
    let out_a = fe_a
        .memcpy_d2h(bufs_a.output, 0, bufs_a.output_len)
        .unwrap();
    let out_b = fe_b
        .memcpy_d2h(bufs_b.output, 0, bufs_b.output_len)
        .unwrap();
    assert_eq!(out_a, aes.expected_output(10));
    assert_eq!(out_b, aes.expected_output(11));
}
