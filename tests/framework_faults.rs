//! Fault injection: the framework must surface device and protocol
//! errors to the offending frontend without corrupting other users or
//! wedging the daemon.

use std::sync::Arc;

use ewc_core::{CoreError, Runtime, RuntimeConfig, Template};
use ewc_gpu::{GpuConfig, GpuError};
use ewc_workloads::{AesWorkload, Workload};

fn runtime() -> (Runtime, Arc<dyn Workload>) {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        force_gpu: true,
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&aes))
    .template(Template::homogeneous("encryption"))
    .build();
    (rt, aes)
}

#[test]
fn device_oom_is_reported_and_survivable() {
    let (rt, aes) = runtime();
    let fe = rt.connect();
    // 8 GiB on a 4 GiB card.
    let err = fe.malloc(8 << 30).unwrap_err();
    assert!(
        matches!(err, CoreError::Gpu(GpuError::OutOfMemory { .. })),
        "got {err:?}"
    );
    // The daemon is still healthy: a normal user proceeds end to end.
    let mut fe2 = rt.connect();
    let (args, bufs) = aes.build_args(&mut fe2, 1).unwrap();
    fe2.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe2.setup_argument(*a).unwrap();
    }
    fe2.launch("encryption").unwrap();
    fe2.sync().unwrap();
    let out = fe2.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
    assert_eq!(out, aes.expected_output(1));
}

#[test]
fn invalid_pointer_operations_are_rejected() {
    let (rt, _) = runtime();
    let fe = rt.connect();
    let bogus = ewc_gpu::DevicePtr(0xdead_0000);
    assert!(matches!(
        fe.memcpy_h2d(bogus, 0, &[1, 2, 3]).unwrap_err(),
        CoreError::Gpu(GpuError::InvalidPointer(_))
    ));
    assert!(matches!(
        fe.memcpy_d2h(bogus, 0, 4).unwrap_err(),
        CoreError::Gpu(GpuError::InvalidPointer(_))
    ));
    assert!(matches!(
        fe.free(bogus).unwrap_err(),
        CoreError::Gpu(GpuError::InvalidPointer(_))
    ));
}

#[test]
fn out_of_bounds_copies_are_rejected() {
    let (rt, _) = runtime();
    let fe = rt.connect();
    let p = fe.malloc(16).unwrap();
    assert!(matches!(
        fe.memcpy_h2d(p, 8, &[0u8; 16]).unwrap_err(),
        CoreError::Gpu(GpuError::OutOfBounds { .. })
    ));
    assert!(matches!(
        fe.memcpy_d2h(p, 0, 17).unwrap_err(),
        CoreError::Gpu(GpuError::OutOfBounds { .. })
    ));
    // In-bounds copies still work afterwards.
    fe.memcpy_h2d(p, 0, &[7u8; 16]).unwrap();
    assert_eq!(fe.memcpy_d2h(p, 0, 16).unwrap(), vec![7u8; 16]);
}

#[test]
fn double_free_is_an_error_not_a_crash() {
    let (rt, _) = runtime();
    let fe = rt.connect();
    let p = fe.malloc(64).unwrap();
    fe.free(p).unwrap();
    assert!(fe.free(p).is_err());
}

#[test]
fn frontends_outliving_the_runtime_fail_gracefully() {
    let (rt, _) = runtime();
    let fe = rt.connect();
    drop(rt); // shuts the backend down
    assert!(matches!(
        fe.malloc(16).unwrap_err(),
        CoreError::Disconnected
    ));
    assert!(matches!(fe.sync().unwrap_err(), CoreError::Disconnected));
}

#[test]
fn failed_launch_does_not_leave_stale_pending_state() {
    let (rt, aes) = runtime();
    let mut fe = rt.connect();
    // Bad configuration → rejected launch.
    fe.configure_call(1, 1).unwrap();
    assert!(matches!(
        fe.launch("encryption").unwrap_err(),
        CoreError::BadConfiguration(_)
    ));
    // A correct launch from the same context then succeeds and the sync
    // completes without the rejected kernel haunting the queue.
    let (args, bufs) = aes.build_args(&mut fe, 9).unwrap();
    fe.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe.setup_argument(*a).unwrap();
    }
    fe.launch("encryption").unwrap();
    fe.sync().unwrap();
    let out = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
    assert_eq!(out, aes.expected_output(9));
    let report = rt.shutdown();
    let total: usize = report.stats.records.iter().map(|r| r.kernels.len()).sum();
    assert_eq!(total, 1, "only the valid launch executed");
}
