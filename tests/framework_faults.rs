//! Fault injection: the framework must surface device and protocol
//! errors to the offending frontend without corrupting other users or
//! wedging the daemon.

use std::sync::Arc;

use ewc_core::{CoreError, Runtime, RuntimeConfig, Template};
use ewc_gpu::{GpuConfig, GpuError, KernelDesc};
use ewc_workloads::registry::DeviceBuffers;
use ewc_workloads::{AesWorkload, Workload};

fn runtime() -> (Runtime, Arc<dyn Workload>) {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        force_gpu: true,
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&aes))
    .template(Template::homogeneous("encryption"))
    .build();
    (rt, aes)
}

#[test]
fn device_oom_is_reported_and_survivable() {
    let (rt, aes) = runtime();
    let fe = rt.connect();
    // 8 GiB on a 4 GiB card.
    let err = fe.malloc(8 << 30).unwrap_err();
    assert!(
        matches!(err, CoreError::Gpu(GpuError::OutOfMemory { .. })),
        "got {err:?}"
    );
    // The daemon is still healthy: a normal user proceeds end to end.
    let mut fe2 = rt.connect();
    let (args, bufs) = aes.build_args(&mut fe2, 1).unwrap();
    fe2.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe2.setup_argument(*a).unwrap();
    }
    fe2.launch("encryption").unwrap();
    fe2.sync().unwrap();
    let out = fe2.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
    assert_eq!(out, aes.expected_output(1));
}

#[test]
fn invalid_pointer_operations_are_rejected() {
    let (rt, _) = runtime();
    let fe = rt.connect();
    let bogus = ewc_gpu::DevicePtr(0xdead_0000);
    assert!(matches!(
        fe.memcpy_h2d(bogus, 0, &[1, 2, 3]).unwrap_err(),
        CoreError::Gpu(GpuError::InvalidPointer(_))
    ));
    assert!(matches!(
        fe.memcpy_d2h(bogus, 0, 4).unwrap_err(),
        CoreError::Gpu(GpuError::InvalidPointer(_))
    ));
    assert!(matches!(
        fe.free(bogus).unwrap_err(),
        CoreError::Gpu(GpuError::InvalidPointer(_))
    ));
}

#[test]
fn out_of_bounds_copies_are_rejected() {
    let (rt, _) = runtime();
    let fe = rt.connect();
    let p = fe.malloc(16).unwrap();
    assert!(matches!(
        fe.memcpy_h2d(p, 8, &[0u8; 16]).unwrap_err(),
        CoreError::Gpu(GpuError::OutOfBounds { .. })
    ));
    assert!(matches!(
        fe.memcpy_d2h(p, 0, 17).unwrap_err(),
        CoreError::Gpu(GpuError::OutOfBounds { .. })
    ));
    // In-bounds copies still work afterwards.
    fe.memcpy_h2d(p, 0, &[7u8; 16]).unwrap();
    assert_eq!(fe.memcpy_d2h(p, 0, 16).unwrap(), vec![7u8; 16]);
}

#[test]
fn double_free_is_an_error_not_a_crash() {
    let (rt, _) = runtime();
    let fe = rt.connect();
    let p = fe.malloc(64).unwrap();
    fe.free(p).unwrap();
    assert!(fe.free(p).is_err());
}

#[test]
fn frontends_outliving_the_runtime_fail_gracefully() {
    let (rt, _) = runtime();
    let fe = rt.connect();
    drop(rt); // shuts the backend down
    assert!(matches!(
        fe.malloc(16).unwrap_err(),
        CoreError::Disconnected
    ));
    assert!(matches!(fe.sync().unwrap_err(), CoreError::Disconnected));
}

/// A kernel demanding more shared memory per block than any SM has:
/// schedulable nowhere, rejected at enqueue time.
struct SharedMemHog;

impl Workload for SharedMemHog {
    fn name(&self) -> &'static str {
        "hog"
    }
    fn desc(&self) -> KernelDesc {
        KernelDesc::builder("hog")
            .threads_per_block(64)
            .shared_mem_per_block(1 << 30)
            .comp_insts(10.0)
            .build()
    }
    fn blocks(&self) -> u32 {
        1
    }
    fn cpu_task(&self) -> ewc_cpu::CpuTask {
        ewc_cpu::CpuTask::new("hog", 0.1, 1, 0)
    }
    fn h2d_bytes(&self) -> u64 {
        0
    }
    fn d2h_bytes(&self) -> u64 {
        4
    }
    fn body(&self) -> ewc_gpu::kernel::BlockFn {
        Arc::new(|_, _| {})
    }
    fn build_args(
        &self,
        gpu: &mut dyn ewc_gpu::DeviceAlloc,
        _seed: u64,
    ) -> Result<(Vec<ewc_gpu::kernel::KernelArg>, DeviceBuffers), GpuError> {
        let out = gpu.alloc_bytes(4)?;
        Ok((
            vec![ewc_gpu::kernel::KernelArg::Ptr(out)],
            DeviceBuffers {
                input: out,
                output: out,
                output_len: 4,
            },
        ))
    }
    fn expected_output(&self, _seed: u64) -> Vec<u8> {
        vec![0; 4]
    }
}

#[test]
fn unschedulable_kernel_rejected_at_launch_others_complete() {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        force_gpu: true,
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&aes))
    .workload("hog", Arc::new(SharedMemHog))
    .template(Template::homogeneous("encryption"))
    .build();

    let mut hog_fe = rt.connect();
    let hog = SharedMemHog;
    let (args, _bufs) = hog.build_args(&mut hog_fe, 0).unwrap();
    hog_fe
        .configure_call(hog.blocks(), hog.desc().threads_per_block)
        .unwrap();
    for a in &args {
        hog_fe.setup_argument(*a).unwrap();
    }
    let err = hog_fe.launch("hog").unwrap_err();
    assert!(
        matches!(err, CoreError::Gpu(GpuError::Unschedulable(_))),
        "got {err:?}"
    );

    // The rejection never reached the pending queue; another frontend's
    // work completes normally.
    let mut fe = rt.connect();
    let (args, bufs) = aes.build_args(&mut fe, 4).unwrap();
    fe.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe.setup_argument(*a).unwrap();
    }
    fe.launch("encryption").unwrap();
    fe.sync().unwrap();
    let out = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
    assert_eq!(out, aes.expected_output(4));
    let report = rt.shutdown();
    let total: usize = report.stats.records.iter().map(|r| r.kernels.len()).sum();
    assert_eq!(total, 1, "only the schedulable launch executed");
}

#[test]
fn disconnected_frontend_pending_work_is_drained_not_wedged() {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        force_gpu: true,
        ..RuntimeConfig::default()
    })
    .telemetry(ewc_telemetry::TelemetrySink::enabled())
    .workload("encryption", Arc::clone(&aes))
    .template(Template::homogeneous("encryption"))
    .build();

    // fe1 enqueues a launch, then its "process" dies before syncing.
    let mut fe1 = rt.connect();
    let (args, _bufs) = aes.build_args(&mut fe1, 1).unwrap();
    fe1.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe1.setup_argument(*a).unwrap();
    }
    fe1.launch("encryption").unwrap();
    drop(fe1);

    // fe2's work completes; fe1's orphaned launch must not wedge the
    // daemon or execute on its behalf.
    let mut fe2 = rt.connect();
    let (args, bufs) = aes.build_args(&mut fe2, 2).unwrap();
    fe2.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe2.setup_argument(*a).unwrap();
    }
    fe2.launch("encryption").unwrap();
    fe2.sync().unwrap();
    let out = fe2.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
    assert_eq!(out, aes.expected_output(2));

    let report = rt.shutdown();
    assert_eq!(report.stats.drained_requests, 1);
    assert_eq!(report.stats.reaped_frontends, 1);
    let executed: usize = report.stats.records.iter().map(|r| r.kernels.len()).sum();
    assert_eq!(executed, 1, "the orphaned launch must not execute");
    let audit = report.telemetry.expect("sink attached").audit;
    assert!(
        audit
            .iter()
            .any(|r| r.verdict == ewc_telemetry::Verdict::Drained),
        "drain must be audited: {audit:?}"
    );
}

#[test]
fn failed_launch_does_not_leave_stale_pending_state() {
    let (rt, aes) = runtime();
    let mut fe = rt.connect();
    // Bad configuration → rejected launch.
    fe.configure_call(1, 1).unwrap();
    assert!(matches!(
        fe.launch("encryption").unwrap_err(),
        CoreError::BadConfiguration(_)
    ));
    // A correct launch from the same context then succeeds and the sync
    // completes without the rejected kernel haunting the queue.
    let (args, bufs) = aes.build_args(&mut fe, 9).unwrap();
    fe.configure_call(aes.blocks(), aes.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe.setup_argument(*a).unwrap();
    }
    fe.launch("encryption").unwrap();
    fe.sync().unwrap();
    let out = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
    assert_eq!(out, aes.expected_output(9));
    let report = rt.shutdown();
    let total: usize = report.stats.records.iter().map(|r| r.kernels.len()).sum();
    assert_eq!(total, 1, "only the valid launch executed");
}
