//! Cross-crate correctness: a consolidated launch — manual or through
//! the full framework — must produce byte-identical results to serial
//! execution for every workload family and mix shape.

use ewc_bench::{run_dynamic, run_manual, run_serial, Mix};
use ewc_gpu::GpuConfig;

fn assert_all_correct(mix: &Mix, label: &str) {
    let serial = run_serial(mix);
    let manual = run_manual(mix);
    let dynamic = run_dynamic(mix);
    assert!(
        serial.correct,
        "{label}: serial outputs must match host references"
    );
    assert!(
        manual.correct,
        "{label}: manual consolidation corrupted outputs"
    );
    assert!(
        dynamic.correct,
        "{label}: framework consolidation corrupted outputs"
    );
}

#[test]
fn homogeneous_encryption() {
    let cfg = GpuConfig::tesla_c1060();
    for n in [1, 2, 5, 9] {
        assert_all_correct(&Mix::encryption(&cfg, n), &format!("enc x{n}"));
    }
}

#[test]
fn homogeneous_sorting() {
    let cfg = GpuConfig::tesla_c1060();
    for n in [1, 4, 9] {
        assert_all_correct(&Mix::sorting(&cfg, n), &format!("sort x{n}"));
    }
}

#[test]
fn heterogeneous_search_blackscholes() {
    let cfg = GpuConfig::tesla_c1060();
    assert_all_correct(&Mix::search_blackscholes(&cfg, 1, 1), "1S+1B");
    assert_all_correct(&Mix::search_blackscholes(&cfg, 2, 10), "2S+10B");
}

#[test]
fn heterogeneous_encryption_montecarlo() {
    let cfg = GpuConfig::tesla_c1060();
    assert_all_correct(&Mix::encryption_montecarlo(&cfg, 1, 1), "1E+1M");
    assert_all_correct(&Mix::encryption_montecarlo(&cfg, 3, 3), "3E+3M");
}

#[test]
fn scenario_mixes() {
    let cfg = GpuConfig::tesla_c1060();
    assert_all_correct(&Mix::scenario1(&cfg), "scenario 1");
    assert_all_correct(&Mix::scenario2(&cfg), "scenario 2");
}

#[test]
fn distinct_instances_get_distinct_outputs() {
    // Two instances of the same workload with different seeds must not
    // be cross-wired by consolidation: verify outputs differ.
    let cfg = GpuConfig::tesla_c1060();
    let mix = Mix::encryption(&cfg, 2);
    let w = &mix.instances[0].1;
    assert_ne!(
        w.expected_output(0),
        w.expected_output(1),
        "seeds must generate different instances"
    );
    // run_manual already asserts per-instance equality against the
    // per-seed reference, which implies no cross-wiring.
    assert!(run_manual(&mix).correct);
}
