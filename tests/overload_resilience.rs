//! Overload-resilience integration tests: the open-loop harness
//! (`ewc-load`) driving the admission-controlled backend.
//!
//! The pinned properties:
//!
//! 1. **Conservation** — every generated request is accounted for
//!    exactly once (completed, failed with an audit, shed with an
//!    audit, or drained at disconnect), across light / storm / overload
//!    scenarios and seeds.
//! 2. **Determinism** — a same-seed overload replay is byte-identical:
//!    same client tallies, same audit log, same Chrome trace.
//! 3. **Graceful degradation** — a 10× storm finishes with bounded
//!    queue depth, nonzero sheds, and goodput within 10% of what the
//!    backend sustains at 1×: overload costs requests, not the service.

use ewc_load::openloop::{run, LoadConfig};
use ewc_load::ArrivalProcess;

/// Shrink a preset so the sweep stays cheap in debug builds while still
/// exercising hundreds of concurrent in-flight requests.
fn sweep_size(mut cfg: LoadConfig) -> LoadConfig {
    cfg.streams = 32;
    cfg.arrivals_per_stream = 16;
    cfg
}

#[test]
fn conservation_holds_across_scenarios_and_seeds() {
    for seed in [1u64, 42, 1337] {
        for (label, cfg) in [
            ("light", LoadConfig::light(seed)),
            ("storm", LoadConfig::storm(seed)),
            ("overload", LoadConfig::overload(seed)),
        ] {
            let r = run(&sweep_size(cfg));
            assert!(
                r.conserved(),
                "{label} seed {seed}: generated {} != completed {} + failed {} \
                 + shed {} + drained {}",
                r.generated,
                r.completed,
                r.failed,
                r.shed,
                r.drained
            );
            assert_eq!(
                r.client.client_errors, 0,
                "{label} seed {seed}: unexpected client errors: {:?}",
                r.client
            );
            // Client-side and backend-side shed accounting must agree:
            // every shed was either answered at admission or delivered
            // as a notice at sync — none vanished.
            assert_eq!(
                r.shed,
                r.client.shed_at_admission + r.client.shed_notices,
                "{label} seed {seed}: shed accounting disagrees: {:?}",
                r.client
            );
        }
    }
}

#[test]
fn bursty_and_diurnal_storms_conserve_too() {
    for process in [LoadConfig::bursty(), LoadConfig::diurnal()] {
        let cfg = sweep_size(LoadConfig::scaled(42, process.clone(), 4.0));
        let r = run(&cfg);
        assert!(r.conserved(), "{} 4x: {r:?}", process.label());
        assert_eq!(r.client.client_errors, 0, "{} 4x", process.label());
    }
}

#[test]
fn same_seed_overload_replay_is_byte_identical() {
    let mut cfg = sweep_size(LoadConfig::overload(1337));
    cfg.telemetry = true;
    let a = run(&cfg);
    let b = run(&cfg);

    // Scalar outcomes first (cheap to diagnose on failure).
    assert_eq!(a.client, b.client);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.max_degradation_level, b.max_degradation_level);
    assert_eq!(a.elapsed_s.to_bits(), b.elapsed_s.to_bits());
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());

    // Every shed and every decision left the same audit trail.
    let (sa, sb) = (
        a.telemetry.as_ref().expect("telemetry requested"),
        b.telemetry.as_ref().expect("telemetry requested"),
    );
    assert!(
        !sa.audit.is_empty(),
        "an overload run must leave an audit trail"
    );
    assert_eq!(
        format!("{:?}", sa.audit),
        format!("{:?}", sb.audit),
        "audit logs must replay byte-identically"
    );

    // And the full Chrome-trace export is byte-identical.
    let ta = ewc_telemetry::export::chrome::render(sa);
    let tb = ewc_telemetry::export::chrome::render(sb);
    assert!(!ta.is_empty());
    assert_eq!(ta, tb, "chrome traces must replay byte-identically");
}

#[test]
fn ten_x_storm_degrades_gracefully() {
    // Full preset scale, both runs measured here so the bar tracks the
    // harness itself rather than hard-coded throughput numbers.
    let one_x = run(&LoadConfig::scaled(7, LoadConfig::poisson(), 1.0));
    let storm = run(&LoadConfig::overload(7));

    assert!(one_x.conserved(), "{one_x:?}");
    assert!(storm.conserved(), "{storm:?}");
    assert_eq!(storm.client.client_errors, 0);

    // The storm must actually shed — otherwise it is not an overload.
    assert!(storm.shed > 0, "a 10x storm must shed: {:?}", storm.client);

    // Bounded queues: the pending queue never exceeded the configured
    // per-device bound (plus the requests a flush batch holds).
    let bound = LoadConfig::preset_admission().max_per_device as u64;
    assert!(
        storm.max_pending_depth <= bound,
        "pending depth {} exceeded the admission bound {}",
        storm.max_pending_depth,
        bound
    );

    // Graceful degradation: goodput under 10x offered load stays within
    // 10% of the 1x service rate — the backend sheds the excess instead
    // of collapsing.
    let (g1, g10) = (one_x.goodput_hz(), storm.goodput_hz());
    assert!(
        g10 >= 0.9 * g1,
        "overload goodput {g10:.1}/s collapsed below 90% of 1x {g1:.1}/s"
    );
}

#[test]
fn degradation_ladder_engages_and_recovers() {
    // The ladder preset: no rate limit and a heavy 20 ms kernel make
    // the *device* the bottleneck, so admitted work piles up as device
    // backlog and the queue-age watchdog walks the ladder down. It must
    // engage, step more than once (engage + recover at minimum), and
    // the run must still conserve.
    let r = run(&LoadConfig::ladder(11));
    assert!(r.conserved(), "{r:?}");
    assert!(
        r.max_degradation_level >= 1,
        "the ladder scenario must engage the watchdog: {r:?}"
    );
    assert!(
        r.degradation_steps >= 2,
        "a ladder that engaged must also recover: {r:?}"
    );
}

#[test]
fn priorities_shed_low_before_high() {
    // Under deep overload the preset sheds Low traffic preferentially.
    let mut cfg = sweep_size(LoadConfig::overload(5));
    cfg.telemetry = true;
    let r = run(&cfg);
    assert!(r.conserved(), "{r:?}");
    let snap = r.telemetry.as_ref().expect("telemetry requested");
    // Count shed verdicts; the audit reason strings carry the cause.
    let shed_records = snap
        .audit
        .iter()
        .filter(|d| d.verdict.label() == "shed")
        .count() as u64;
    assert_eq!(
        shed_records, r.shed,
        "every shed must be audited exactly once"
    );
}

#[test]
fn admission_off_keeps_the_open_loop_unbounded() {
    // The ablation baseline: no admission layer means nothing is shed,
    // nothing is answered Busy, and every generated request completes —
    // i.e. the new machinery is fully opt-in.
    let mut cfg = sweep_size(LoadConfig::storm(3));
    cfg.admission = None;
    let r = run(&cfg);
    assert!(r.conserved(), "{r:?}");
    assert_eq!(r.shed, 0);
    assert_eq!(r.client.busy_answers, 0);
    assert_eq!(r.completed, r.generated);
}

#[test]
fn offered_load_multiplier_scales_all_processes() {
    for p in [
        LoadConfig::poisson(),
        LoadConfig::bursty(),
        LoadConfig::diurnal(),
    ] {
        let s = p.scaled(4.0);
        assert!((s.mean_rate_hz() - 4.0 * p.mean_rate_hz()).abs() < 1e-9);
        assert_eq!(s.label(), p.label());
    }
    // Presets expose the documented multipliers.
    assert!(
        (LoadConfig::light(1).process.mean_rate_hz()
            - 0.5
                * ArrivalProcess::Poisson {
                    rate_hz: ewc_load::openloop::BASE_RATE_HZ
                }
                .mean_rate_hz())
        .abs()
            < 1e-9
    );
}
