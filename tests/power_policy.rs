//! Power-state stack integration: same-seed DVFS replay determinism,
//! the race-vs-pace crossover through the whole runtime, and the fleet
//! power cap throttling operating points with an audited trail.

use std::sync::Arc;

use ewc_core::{PowerStatesConfig, Runtime, RuntimeConfig, Template};
use ewc_exec::VirtualClock;
use ewc_fleet::FleetConfig;
use ewc_gpu::GpuConfig;
use ewc_telemetry::{TelemetrySink, Verdict};
use ewc_workloads::{AesWorkload, Workload};

/// Run `n` verified AES instances under the given knobs and return the
/// shutdown report. Virtual span mode so whole [`ewc_core::BackendStats`]
/// values compare byte-for-byte across runs (see `multi_gpu.rs` for why
/// wall-clock mode can shift a flush timestamp).
fn session(
    n: u64,
    threshold: u32,
    power_states: Option<PowerStatesConfig>,
    fleet: Option<FleetConfig>,
) -> ewc_core::RuntimeReport {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        threshold_factor: threshold,
        force_gpu: true,
        noise_seed: Some(7),
        power_states,
        fleet,
        ..RuntimeConfig::default()
    })
    .telemetry(TelemetrySink::enabled_virtual(VirtualClock::new()))
    .workload("encryption", Arc::clone(&aes))
    .template(Template::homogeneous("encryption"))
    .build();
    let mut sessions = Vec::new();
    for seed in 0..n {
        let mut fe = rt.connect();
        let (args, bufs) = aes.build_args(&mut fe, seed).expect("build");
        fe.configure_call(aes.blocks(), aes.desc().threads_per_block)
            .unwrap();
        for a in &args {
            fe.setup_argument(*a).unwrap();
        }
        fe.launch("encryption").expect("launch");
        sessions.push((fe, bufs, aes.expected_output(seed)));
    }
    sessions[0].0.sync().unwrap();
    for (fe, bufs, expect) in &sessions {
        let got = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
        assert_eq!(&got, expect);
    }
    drop(sessions);
    rt.shutdown()
}

#[test]
fn dvfs_replay_is_byte_identical_under_every_knob() {
    for knob in [
        PowerStatesConfig::race(),
        PowerStatesConfig::pace(60.0),
        PowerStatesConfig::cap(220.0),
    ] {
        let a = session(9, 9, Some(knob.clone()), None);
        let b = session(9, 9, Some(knob.clone()), None);
        assert!(
            a.stats.state_changes > 0,
            "{knob:?}: the stack must actually switch states: {:?}",
            a.stats
        );
        assert_eq!(
            a.stats, b.stats,
            "{knob:?}: same seed must replay the whole backend byte-identically"
        );
        assert_eq!(a.elapsed_s.to_bits(), b.elapsed_s.to_bits());
        assert_eq!(a.energy.energy_j.to_bits(), b.energy.energy_j.to_bits());
    }
}

#[test]
fn race_and_pace_cross_over_through_the_runtime() {
    // Race pins P0 and parks; pace gets 3× the race batch time as its
    // deadline and throttles to a lower operating point, so the same
    // nine-instance batch runs measurably longer — and every output is
    // still verified against the host reference inside `session`.
    let race = session(9, 9, Some(PowerStatesConfig::race()), None);
    let pace = session(
        9,
        9,
        Some(PowerStatesConfig::pace(race.elapsed_s * 3.0)),
        None,
    );
    assert!(race.stats.state_changes > 0, "{:?}", race.stats);
    assert!(pace.stats.state_changes > 0, "{:?}", pace.stats);
    assert!(
        pace.elapsed_s > 1.2 * race.elapsed_s,
        "pace must stretch into its slack: {} vs {}",
        pace.elapsed_s,
        race.elapsed_s
    );
    assert_ne!(
        race.energy.energy_j.to_bits(),
        pace.energy.energy_j.to_bits(),
        "different operating points must integrate different energy"
    );
}

#[test]
fn fleet_cap_throttle_reaches_the_device_and_the_audit_trail() {
    // homogeneous(2).with_dvfs() idles well under 95 W, but adding a
    // context's marginal draw overshoots the cap, so the governor
    // throttles the picked device down its ladder instead of
    // redirecting. The backend must replay that onto the simulated
    // device (stats.state_changes) and audit it as StateChanged.
    let report = session(
        12,
        3,
        None,
        Some(FleetConfig::homogeneous(2).with_dvfs().with_power_cap(95.0)),
    );
    assert!(
        report.stats.state_changes > 0,
        "cap throttles must reach the device: {:?}",
        report.stats
    );
    let audit = report.telemetry.expect("telemetry enabled");
    let throttles: Vec<_> = audit
        .audit
        .iter()
        .filter(|r| r.verdict == Verdict::StateChanged)
        .collect();
    assert!(
        !throttles.is_empty(),
        "cap throttles must be audited: {} records",
        audit.audit.len()
    );
    assert!(
        throttles
            .iter()
            .any(|r| r.reason.contains("power cap throttled")),
        "{:?}",
        throttles.iter().map(|r| &r.reason).collect::<Vec<_>>()
    );

    // Uncapped control: same fleet, no cap — nothing to throttle.
    let free = session(12, 3, None, Some(FleetConfig::homogeneous(2).with_dvfs()));
    assert_eq!(free.stats.state_changes, 0, "{:?}", free.stats);
}
