//! Model-accuracy guarantees across a broad space of plans, beyond the
//! hand-picked Figure 3/4/5 points: the performance model must track the
//! engine and the power model must track the ground truth over seeded
//! random consolidations.

use ewc_energy::{GpuPowerGroundTruth, PowerCoefficients, ThermalModel, TrainingBenchmark};
use ewc_gpu::{DispatchPolicy, ExecutionEngine, GpuConfig, KernelDesc, SimRng};
use ewc_models::{analyze, ConsolidationPlan, KernelSpec, PerfModel, PowerModel};

fn cfg() -> GpuConfig {
    GpuConfig::tesla_c1060()
}

/// A random but schedulable kernel spec.
fn random_spec(rng: &mut SimRng) -> KernelSpec {
    let tpb = [64u32, 128, 256, 512][rng.range_usize(0, 4)];
    let desc = KernelDesc::builder("rand")
        .threads_per_block(tpb)
        .regs_per_thread(rng.range_u32(8, 32))
        .comp_insts(rng.range_f64(1e5, 5e7))
        .coalesced_mem(rng.range_f64(0.0, 5e4))
        .uncoalesced_mem(rng.range_f64(0.0, 2e3))
        .build();
    KernelSpec::new(desc, rng.range_u32(1, 20))
}

#[test]
fn perf_model_tracks_engine_on_random_plans() {
    let model = PerfModel::new(cfg());
    let engine = ExecutionEngine::new(cfg());
    let mut rng = SimRng::seed_from_u64(2024);
    let mut worst = 0.0_f64;
    for round in 0..40 {
        let members = rng.range_u32(1, 5);
        let mut plan = ConsolidationPlan::new();
        for _ in 0..members {
            plan.push(random_spec(&mut rng));
        }
        let predicted = model.predict(&plan).time_s;
        let measured = engine
            .run(&plan.to_grid(), DispatchPolicy::default())
            .unwrap()
            .elapsed_s;
        let err = (predicted - measured).abs() / measured;
        worst = worst.max(err);
        assert!(
            err < 0.30,
            "round {round}: predicted {predicted:.3} vs measured {measured:.3} ({:.0}%)",
            err * 100.0
        );
    }
    // The bulk should be much tighter than the 30% outlier bound.
    assert!(worst > 0.0, "sanity: some error expected");
}

#[test]
fn perf_model_never_underestimates_the_longest_member() {
    let model = PerfModel::new(cfg());
    let mut rng = SimRng::seed_from_u64(7);
    for _ in 0..25 {
        let mut plan = ConsolidationPlan::new();
        for _ in 0..rng.range_u32(1, 4) {
            plan.push(random_spec(&mut rng));
        }
        let pred = model.predict(&plan);
        let longest = plan
            .members
            .iter()
            .map(|m| ewc_gpu::BlockCost::derive(&m.desc, &cfg()).t_solo_s)
            .fold(0.0, f64::max);
        assert!(
            pred.time_s >= longest * (1.0 - 1e-9),
            "a consolidation cannot finish before its longest block: {} < {}",
            pred.time_s,
            longest
        );
    }
}

#[test]
fn power_model_tracks_ground_truth_on_random_plans() {
    let truth = GpuPowerGroundTruth::tesla_c1060();
    let coeffs =
        PowerCoefficients::train(&cfg(), &truth, &TrainingBenchmark::rodinia_suite(), 42).unwrap();
    let power = PowerModel::new(coeffs, ThermalModel::gt200(), cfg());
    let perf = PerfModel::new(cfg());
    let engine = ExecutionEngine::new(cfg());
    let mut rng = SimRng::seed_from_u64(99);
    let mut total_err = 0.0;
    let rounds = 25;
    for round in 0..rounds {
        let mut plan = ConsolidationPlan::new();
        for _ in 0..rng.range_u32(1, 4) {
            plan.push(random_spec(&mut rng));
        }
        let placement = analyze(&plan, &cfg());
        let pp = perf.predict_placed(&plan, &placement);
        let rates = power.predicted_rates(&plan, &placement, pp.time_s, &pp.per_sm_finish);
        let predicted = power.predict_dyn_power_w(&rates);

        let out = engine
            .run(&plan.to_grid(), DispatchPolicy::default())
            .unwrap();
        let mut e = 0.0;
        for iv in &out.intervals {
            e += truth.dyn_power_w(&iv.rates) * iv.dur_s;
        }
        let measured = e / out.elapsed_s;
        let err = (predicted - measured).abs() / measured;
        total_err += err;
        assert!(
            err < 0.35,
            "round {round}: predicted {predicted:.1} W vs measured {measured:.1} W"
        );
    }
    let mean = total_err / f64::from(rounds);
    assert!(
        mean < 0.15,
        "mean power error {:.1}% too high",
        mean * 100.0
    );
}

#[test]
fn member_finish_respects_makespan() {
    let model = PerfModel::new(cfg());
    let mut rng = SimRng::seed_from_u64(5);
    for _ in 0..20 {
        let mut plan = ConsolidationPlan::new();
        for _ in 0..rng.range_u32(2, 5) {
            plan.push(random_spec(&mut rng));
        }
        let pred = model.predict(&plan);
        for (i, f) in pred.member_finish.iter().enumerate() {
            assert!(
                *f <= pred.time_s * (1.0 + 1e-9),
                "member {i} finishes after makespan"
            );
            assert!(*f > 0.0, "member {i} never finishes");
        }
    }
}
