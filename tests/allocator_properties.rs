//! Model-based property tests for the device memory allocator: random
//! alloc/free/write/read sequences are mirrored against a trivially
//! correct reference model (a map of id → bytes); the real allocator
//! must agree on every observable. Sequences are generated with the
//! workspace's deterministic [`SimRng`], so every run replays the same
//! seeded case set.

use std::collections::HashMap;

use ewc_gpu::memory::GlobalMemory;
use ewc_gpu::{DevicePtr, SimRng};

#[derive(Debug, Clone)]
enum Op {
    Alloc {
        id: u16,
        len: u16,
    },
    Free {
        id: u16,
    },
    Write {
        id: u16,
        offset: u16,
        byte: u8,
        len: u16,
    },
    Read {
        id: u16,
    },
}

fn random_op(rng: &mut SimRng) -> Op {
    // Small id space so alloc/free/write/read frequently hit the same
    // buffer instead of missing the live map.
    let id = rng.range_u32(0, 24) as u16;
    match rng.range_u32(0, 4) {
        0 => Op::Alloc {
            id,
            len: rng.range_u32(1, 2048) as u16,
        },
        1 => Op::Free { id },
        2 => Op::Write {
            id,
            offset: rng.range_u32(0, 3000) as u16,
            byte: rng.next_u32() as u8,
            len: rng.range_u32(1, 512) as u16,
        },
        _ => Op::Read { id },
    }
}

#[test]
fn allocator_agrees_with_reference_model() {
    let mut rng = SimRng::seed_from_u64(0xa110_c001);
    for case in 0..128 {
        let n_ops = rng.range_usize(1, 120);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let mut mem = GlobalMemory::new(1 << 20, 4 << 10);
        let mut live: HashMap<u16, (DevicePtr, Vec<u8>)> = HashMap::new();

        for op in ops {
            match op {
                Op::Alloc { id, len } => {
                    if live.contains_key(&id) {
                        continue;
                    }
                    match mem.alloc(u64::from(len)) {
                        Ok(ptr) => {
                            // Fresh allocations are zeroed.
                            let got = mem.read(ptr, 0, u64::from(len)).unwrap();
                            assert!(got.iter().all(|&b| b == 0), "case {case}: dirty alloc");
                            live.insert(id, (ptr, vec![0u8; len as usize]));
                        }
                        Err(_) => {
                            // Only legitimate when capacity is exhausted
                            // (fragmentation counts — compare to free
                            // bytes, not the raw sum).
                            assert!(mem.free_bytes() < (1 << 20), "case {case}: bogus OOM");
                        }
                    }
                }
                Op::Free { id } => {
                    if let Some((ptr, _)) = live.remove(&id) {
                        assert!(mem.free(ptr).is_ok(), "case {case}");
                        // Double free must fail.
                        assert!(mem.free(ptr).is_err(), "case {case}: double free allowed");
                    }
                }
                Op::Write {
                    id,
                    offset,
                    byte,
                    len,
                } => {
                    if let Some((ptr, shadow)) = live.get_mut(&id) {
                        let data = vec![byte; len as usize];
                        let fits = (offset as usize).saturating_add(len as usize) <= shadow.len();
                        let res = mem.write(*ptr, u64::from(offset), &data);
                        assert_eq!(res.is_ok(), fits, "case {case}: bounds check mismatch");
                        if fits {
                            shadow[offset as usize..(offset + len) as usize].copy_from_slice(&data);
                        }
                    }
                }
                Op::Read { id } => {
                    if let Some((ptr, shadow)) = live.get(&id) {
                        let got = mem.read(*ptr, 0, shadow.len() as u64).unwrap();
                        assert_eq!(&got, shadow, "case {case}: contents diverged");
                    }
                }
            }
            // Used-byte accounting matches the model at every step.
            let expect: u64 = live.values().map(|(_, v)| v.len() as u64).sum();
            assert_eq!(mem.used_bytes(), expect, "case {case}");
        }

        // Every surviving allocation still reads back its shadow.
        for (ptr, shadow) in live.values() {
            let got = mem.read(*ptr, 0, shadow.len() as u64).unwrap();
            assert_eq!(&got, shadow, "case {case}");
        }
    }
}

/// Allocations never overlap, whatever the alloc/free interleaving.
#[test]
fn allocations_are_disjoint() {
    let mut rng = SimRng::seed_from_u64(0xa110_c002);
    for case in 0..128 {
        let n = rng.range_usize(1, 40);
        let lens: Vec<u64> = (0..n).map(|_| rng.range_u64(1, 4096)).collect();
        let mut mem = GlobalMemory::new(1 << 22, 0);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (i, len) in lens.iter().enumerate() {
            let ptr = mem.alloc(*len).unwrap();
            spans.push((ptr.0, ptr.0 + len));
            // Free every third allocation to churn the free list.
            if i % 3 == 2 {
                let (base, end) = spans.remove(i / 3 % spans.len().max(1));
                mem.free(DevicePtr(base)).unwrap();
                let _ = end;
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "case {case}: overlap {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }
}
