//! Model-based property tests for the device memory allocator: random
//! alloc/free/write/read sequences are mirrored against a trivially
//! correct reference model (a map of id → bytes); the real allocator
//! must agree on every observable.

use std::collections::HashMap;

use ewc_gpu::memory::GlobalMemory;
use ewc_gpu::DevicePtr;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { id: u16, len: u16 },
    Free { id: u16 },
    Write { id: u16, offset: u16, byte: u8, len: u16 },
    Read { id: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), 1u16..2048).prop_map(|(id, len)| Op::Alloc { id, len }),
        any::<u16>().prop_map(|id| Op::Free { id }),
        (any::<u16>(), any::<u16>(), any::<u8>(), 1u16..512)
            .prop_map(|(id, offset, byte, len)| Op::Write { id, offset, byte, len }),
        any::<u16>().prop_map(|id| Op::Read { id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocator_agrees_with_reference_model(ops in proptest::collection::vec(arb_op(), 1..120)) {
        let mut mem = GlobalMemory::new(1 << 20, 4 << 10);
        let mut live: HashMap<u16, (DevicePtr, Vec<u8>)> = HashMap::new();

        for op in ops {
            match op {
                Op::Alloc { id, len } => {
                    if live.contains_key(&id) {
                        continue;
                    }
                    match mem.alloc(u64::from(len)) {
                        Ok(ptr) => {
                            // Fresh allocations are zeroed.
                            let got = mem.read(ptr, 0, u64::from(len)).unwrap();
                            prop_assert!(got.iter().all(|&b| b == 0));
                            live.insert(id, (ptr, vec![0u8; len as usize]));
                        }
                        Err(_) => {
                            // Only legitimate when capacity is exhausted
                            // (fragmentation counts — compare to free
                            // bytes, not the raw sum).
                            prop_assert!(mem.free_bytes() < (1 << 20));
                        }
                    }
                }
                Op::Free { id } => {
                    if let Some((ptr, _)) = live.remove(&id) {
                        prop_assert!(mem.free(ptr).is_ok());
                        // Double free must fail.
                        prop_assert!(mem.free(ptr).is_err());
                    }
                }
                Op::Write { id, offset, byte, len } => {
                    if let Some((ptr, shadow)) = live.get_mut(&id) {
                        let data = vec![byte; len as usize];
                        let fits =
                            (offset as usize).saturating_add(len as usize) <= shadow.len();
                        let res = mem.write(*ptr, u64::from(offset), &data);
                        prop_assert_eq!(res.is_ok(), fits, "bounds check mismatch");
                        if fits {
                            shadow[offset as usize..(offset + len) as usize]
                                .copy_from_slice(&data);
                        }
                    }
                }
                Op::Read { id } => {
                    if let Some((ptr, shadow)) = live.get(&id) {
                        let got = mem.read(*ptr, 0, shadow.len() as u64).unwrap();
                        prop_assert_eq!(got, &shadow[..], "contents diverged");
                    }
                }
            }
            // Used-byte accounting matches the model at every step.
            let expect: u64 = live.values().map(|(_, v)| v.len() as u64).sum();
            prop_assert_eq!(mem.used_bytes(), expect);
        }

        // Every surviving allocation still reads back its shadow.
        for (ptr, shadow) in live.values() {
            let got = mem.read(*ptr, 0, shadow.len() as u64).unwrap();
            prop_assert_eq!(got, &shadow[..]);
        }
    }

    /// Allocations never overlap, whatever the alloc/free interleaving.
    #[test]
    fn allocations_are_disjoint(lens in proptest::collection::vec(1u64..4096, 1..40)) {
        let mut mem = GlobalMemory::new(1 << 22, 0);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (i, len) in lens.iter().enumerate() {
            let ptr = mem.alloc(*len).unwrap();
            spans.push((ptr.0, ptr.0 + len));
            // Free every third allocation to churn the free list.
            if i % 3 == 2 {
                let (base, end) = spans.remove(i / 3 % spans.len().max(1));
                mem.free(DevicePtr(base)).unwrap();
                let _ = end;
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }
}
