//! The Figure 6 decision flow, end to end and unforced: the backend
//! tracks pending requests, considers consolidation at the threshold,
//! predicts all three alternatives, and routes each group to the lowest
//! predicted energy — including CPU offload for GPU-hostile groups.

use std::sync::Arc;

use ewc_core::{Choice, Runtime, RuntimeConfig, Template};
use ewc_gpu::kernel::KernelArg;
use ewc_gpu::GpuConfig;
use ewc_workloads::{AesWorkload, MonteCarloWorkload, Workload};

fn submit(
    rt: &Runtime,
    name: &str,
    w: &Arc<dyn Workload>,
    seed: u64,
) -> (ewc_core::Frontend, ewc_workloads::registry::DeviceBuffers) {
    let mut fe = rt.connect();
    let (args, bufs) = w.build_args(&mut fe, seed).expect("build");
    fe.configure_call(w.blocks(), w.desc().threads_per_block)
        .unwrap();
    for a in &args {
        fe.setup_argument(*a).unwrap();
    }
    fe.launch(name).expect("launch");
    (fe, bufs)
}

fn runtime(threshold: u32) -> (Runtime, Arc<dyn Workload>, Arc<dyn Workload>) {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let mc: Arc<dyn Workload> = Arc::new(MonteCarloWorkload::tables78(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        threshold_factor: threshold,
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&aes))
    .workload("montecarlo", Arc::clone(&mc))
    .template(Template::heterogeneous(
        "e+m",
        &["encryption", "montecarlo"],
    ))
    .template(Template::homogeneous("encryption"))
    .template(Template::homogeneous("montecarlo"))
    .build();
    (rt, aes, mc)
}

#[test]
fn single_cpu_friendly_kernel_is_offloaded_to_cpu() {
    let (rt, aes, _) = runtime(10);
    let (fe, bufs) = submit(&rt, "encryption", &aes, 0);
    fe.sync().unwrap();
    // Even when the CPU runs it, the result must land in the buffer the
    // frontend reads back.
    let out = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
    assert_eq!(out, aes.expected_output(0));
    let report = rt.shutdown();
    assert_eq!(report.stats.records.len(), 1);
    assert_eq!(
        report.stats.records[0].choice,
        Choice::Cpu,
        "{:?}",
        report.stats.records
    );
    assert_eq!(report.stats.cpu_executions, 1);
    assert_eq!(report.stats.launches, 0);
}

#[test]
fn single_gpu_friendly_kernel_stays_on_gpu() {
    let (rt, _, mc) = runtime(10);
    let (fe, bufs) = submit(&rt, "montecarlo", &mc, 0);
    fe.sync().unwrap();
    let out = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
    assert_eq!(out, mc.expected_output(0));
    let report = rt.shutdown();
    assert_ne!(report.stats.records[0].choice, Choice::Cpu);
    assert!(report.stats.launches >= 1);
}

#[test]
fn large_enough_group_consolidates_on_gpu() {
    // 9 encryption instances: each alone favours the CPU, together the
    // GPU consolidation wins (Figure 1's whole point).
    let (rt, aes, _) = runtime(20);
    let mut sessions = Vec::new();
    for seed in 0..9 {
        sessions.push((submit(&rt, "encryption", &aes, seed), seed));
    }
    sessions[0].0 .0.sync().unwrap();
    for ((fe, bufs), seed) in &sessions {
        let out = fe.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
        assert_eq!(out, aes.expected_output(*seed));
    }
    let report = rt.shutdown();
    let rec = &report.stats.records[0];
    assert_eq!(
        rec.choice,
        Choice::Consolidate,
        "records: {:?}",
        report.stats.records
    );
    assert_eq!(rec.kernels.len(), 9);
    assert_eq!(report.stats.consolidated_launches, 1);
}

#[test]
fn threshold_triggers_without_sync() {
    let (rt, _, mc) = runtime(3);
    let mut sessions = Vec::new();
    for seed in 0..3 {
        sessions.push(submit(&rt, "montecarlo", &mc, seed));
    }
    // No sync: give the backend a moment to pass the threshold. The
    // launches themselves are synchronous RPCs, so by the time the third
    // ticket is issued the backend has seen all three.
    let report = rt.shutdown(); // shutdown flushes whatever is left
    assert_eq!(
        report
            .stats
            .records
            .iter()
            .map(|r| r.kernels.len())
            .sum::<usize>(),
        3
    );
}

#[test]
fn prediction_recorded_alongside_actuals() {
    let (rt, _, mc) = runtime(10);
    let mut sessions = Vec::new();
    for seed in 0..4 {
        sessions.push(submit(&rt, "montecarlo", &mc, seed));
    }
    sessions[0].0.sync().unwrap();
    let report = rt.shutdown();
    for rec in &report.stats.records {
        assert!(rec.predicted_time_s > 0.0);
        assert!(rec.predicted_energy_j > 0.0);
        assert!(rec.actual_time_s > 0.0);
        if rec.choice != Choice::Cpu {
            // Model and reality should at least agree on the ballpark.
            let ratio = rec.predicted_time_s / rec.actual_time_s;
            assert!(
                (0.5..2.0).contains(&ratio),
                "prediction {} vs actual {}",
                rec.predicted_time_s,
                rec.actual_time_s
            );
        }
    }
}

#[test]
fn unknown_kernels_fall_back_to_individual_execution() {
    // Kernels with no matching template run one by one ("the backend
    // lets the kernels run normally").
    let cfg = GpuConfig::tesla_c1060();
    let mc: Arc<dyn Workload> = Arc::new(MonteCarloWorkload::tables78(&cfg));
    let rt = Runtime::builder(RuntimeConfig::default())
        .workload("montecarlo", Arc::clone(&mc))
        // No templates at all.
        .build();
    let a = submit(&rt, "montecarlo", &mc, 0);
    let b = submit(&rt, "montecarlo", &mc, 1);
    a.0.sync().unwrap();
    let out_a = a.0.memcpy_d2h(a.1.output, 0, a.1.output_len).unwrap();
    let out_b = b.0.memcpy_d2h(b.1.output, 0, b.1.output_len).unwrap();
    assert_eq!(out_a, mc.expected_output(0));
    assert_eq!(out_b, mc.expected_output(1));
    let report = rt.shutdown();
    assert_eq!(report.stats.records.len(), 2);
    assert!(report
        .stats
        .records
        .iter()
        .all(|r| r.template == "<individual>"));
    assert_eq!(report.stats.consolidated_launches, 0);
}

#[test]
fn scenario1_group_is_not_consolidated_by_the_models() {
    // The Table 2 pairing: the models must predict the consolidation is
    // harmful and pick an alternative.
    let cfg = GpuConfig::tesla_c1060();
    let enc: Arc<dyn Workload> = Arc::new(AesWorkload::scenario1(&cfg));
    let mc: Arc<dyn Workload> = Arc::new(MonteCarloWorkload::scenario1(&cfg));
    let rt = Runtime::builder(RuntimeConfig {
        force_gpu: true,
        ..RuntimeConfig::default()
    })
    .workload("encryption", Arc::clone(&enc))
    .workload("montecarlo", Arc::clone(&mc))
    .template(Template::heterogeneous(
        "e+m",
        &["encryption", "montecarlo"],
    ))
    .build();
    let a = submit(&rt, "encryption", &enc, 0);
    let _b = submit(&rt, "montecarlo", &mc, 1);
    a.0.sync().unwrap();
    let report = rt.shutdown();
    let rec = &report.stats.records[0];
    assert_eq!(
        rec.choice,
        Choice::SerialGpu,
        "bad consolidation must be rejected: {rec:?}"
    );
}

#[test]
fn frontend_misuse_is_reported_not_fatal() {
    let (rt, aes, _) = runtime(10);
    let mut fe = rt.connect();
    // Launch with a stale configuration from another kernel.
    fe.configure_call(1, 1).unwrap();
    assert!(fe.launch("encryption").is_err());
    // The runtime keeps working afterwards.
    let (fe2, bufs) = submit(&rt, "encryption", &aes, 7);
    fe2.sync().unwrap();
    let out = fe2.memcpy_d2h(bufs.output, 0, bufs.output_len).unwrap();
    assert_eq!(out, aes.expected_output(7));
    let _ = fe.setup_argument(KernelArg::U32(0));
}
