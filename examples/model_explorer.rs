//! Explore the prediction models directly: sweep the number of
//! consolidated encryption instances and print predicted vs simulated
//! time, power and energy — the raw material of the backend's decisions.
//!
//! ```text
//! cargo run -p ewc-bench --release --example model_explorer
//! ```

use ewc_energy::{GpuPowerGroundTruth, PowerCoefficients, ThermalModel, TrainingBenchmark};
use ewc_gpu::{DispatchPolicy, ExecutionEngine, GpuConfig};
use ewc_models::{ConsolidationPlan, EnergyModel, PowerModel};
use ewc_workloads::{AesWorkload, Workload};

fn main() {
    let cfg = GpuConfig::tesla_c1060();
    let truth = GpuPowerGroundTruth::tesla_c1060();

    // Train the Eq. 11 coefficients exactly as the backend does.
    let coeffs = PowerCoefficients::train(&cfg, &truth, &TrainingBenchmark::rodinia_suite(), 42)
        .expect("training converges");
    println!(
        "trained power model: a_comp={:.3e} W/(op/s), a_mem={:.3e} W/(txn/s), a_active={:.1} W, λ={:.1} W (R²={:.4})\n",
        coeffs.a_comp, coeffs.a_mem, coeffs.a_active, coeffs.lambda, coeffs.r2
    );

    let model = EnergyModel::new(
        cfg.clone(),
        PowerModel::new(coeffs, ThermalModel::gt200(), cfg.clone()),
        200.0,
    );
    let engine = ExecutionEngine::new(cfg.clone());
    let aes = AesWorkload::fig7(&cfg);

    println!(
        "{:>3}  {:>10} {:>10}  {:>9} {:>9}  {:>10} {:>10}",
        "n", "pred t(s)", "sim t(s)", "pred W", "true W", "pred E(J)", "true E(J)"
    );
    for n in [1u32, 2, 3, 6, 9, 12, 15] {
        let plan = ConsolidationPlan::homogeneous(aes.desc(), aes.blocks(), n);
        let pred = model.predict(&plan);

        let out = engine
            .run(&plan.to_grid(), DispatchPolicy::default())
            .expect("run");
        let mut true_e = 0.0;
        for iv in &out.intervals {
            true_e += truth.dyn_power_w(&iv.rates) * iv.dur_s;
        }
        let true_p = true_e / out.elapsed_s;
        println!(
            "{n:>3}  {:>10.2} {:>10.2}  {:>9.1} {:>9.1}  {:>10.0} {:>10.0}",
            pred.time_s, out.elapsed_s, pred.dyn_power_w, true_p, pred.gpu_energy_j, true_e
        );
    }

    println!(
        "\nNote how power grows sub-linearly with instances while time stays\n\
         flat until the 30-SM device fills (n > 10 for 3-block instances):\n\
         that gap is the consolidation energy win the framework hunts for."
    );
}
