//! Scheduling lab: watch the block dispatcher produce the paper's
//! critical-SM placements, and compare dispatch policies on the two
//! Section III scenarios.
//!
//! ```text
//! cargo run -p ewc-bench --release --example scheduling_lab
//! ```

use ewc_gpu::{ConsolidatedGrid, DispatchPolicy, ExecutionEngine, GpuConfig, Grid};
use ewc_workloads::{
    AesWorkload, BlackScholesWorkload, MonteCarloWorkload, SearchWorkload, Workload,
};

fn show(label: &str, grid: &Grid, policy: DispatchPolicy) {
    let engine = ExecutionEngine::new(GpuConfig::tesla_c1060());
    let out = engine.run(grid, policy).expect("runnable grid");
    let per_sm = out.trace.finish_per_sm(30);
    let critical = out.trace.critical_sms(30, 1e-6);
    println!("\n{label} [{policy:?}]");
    println!("  makespan: {:.2} s", out.elapsed_s);
    println!(
        "  critical SMs: {} (first: SM{})",
        critical.len(),
        critical.first().copied().unwrap_or(0)
    );
    // Coarse per-SM load picture: blocks retired and finish time.
    let mut blocks_per_sm = vec![0u32; 30];
    for ev in out.trace.events() {
        blocks_per_sm[ev.sm as usize] += 1;
    }
    print!("  blocks/SM:  ");
    for b in &blocks_per_sm {
        print!("{b}");
    }
    println!();
    print!("  finish (s): ");
    for t in per_sm.iter().step_by(5) {
        print!("{t:>7.1}");
    }
    println!("  (every 5th SM)");
    println!("  gantt (rows = SMs, digits = workload segment, # = overlap):");
    for line in out.trace.ascii_gantt(30, 60).lines().step_by(3) {
        println!("  {line}");
    }
}

fn main() {
    let cfg = GpuConfig::tesla_c1060();

    // Scenario 1: encryption (15 blocks, occupancy-blocking registers)
    // + MonteCarlo (45 occupancy-1 blocks). Under the observed hardware
    // policy the 30 untouched MC blocks pile onto the SMs that finish
    // encryption first — 1 enc + 2 MC on SMs 0-14.
    let enc = AesWorkload::scenario1(&cfg);
    let mc = MonteCarloWorkload::scenario1(&cfg);
    let s1 = ConsolidatedGrid::new()
        .add(Grid::single(enc.desc(), enc.blocks()))
        .add(Grid::single(mc.desc(), mc.blocks()))
        .build();
    show(
        "scenario 1: encryption + MonteCarlo",
        &s1,
        DispatchPolicy::PaperRedistribution,
    );
    show(
        "scenario 1: encryption + MonteCarlo",
        &s1,
        DispatchPolicy::GreedyGlobal,
    );

    // Scenario 2: search (latency-bound) + BlackScholes (compute-bound)
    // co-reside: BS warps fill search's stall cycles.
    let search = SearchWorkload::scenario2(&cfg);
    let bs = BlackScholesWorkload::scenario2(&cfg);
    let s2 = ConsolidatedGrid::new()
        .add(Grid::single(search.desc(), search.blocks()))
        .add(Grid::single(bs.desc(), bs.blocks()))
        .build();
    show(
        "scenario 2: search + BlackScholes",
        &s2,
        DispatchPolicy::PaperRedistribution,
    );
    show(
        "scenario 2: search + BlackScholes",
        &s2,
        DispatchPolicy::GreedyGlobal,
    );

    println!(
        "\nTakeaway: the idealised greedy dispatcher erases scenario 1's\n\
         critical-SM pile-up (and with it the paper's bad-consolidation\n\
         case), while scenario 2's interleaving win survives either way."
    );
}
