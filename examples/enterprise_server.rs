//! Enterprise scenario: many concurrent users firing small mixed
//! requests at a shared GPU node. The backend's threshold logic batches
//! them; the decision engine routes each batch to the GPU (consolidated
//! or serial) or the CPU, whichever costs the least energy — the full
//! Figure 6 flow, with nothing forced.
//!
//! Telemetry is enabled for the run: alongside the textual report it
//! writes `enterprise_trace.json`, a Chrome trace-event file — open it
//! in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing` to see
//! every request, staging copy and per-SM block on a timeline.
//!
//! ```text
//! cargo run -p ewc-bench --release --example enterprise_server
//! ```

use std::sync::Arc;
use std::thread;

use ewc_core::{Runtime, RuntimeConfig, Template};
use ewc_gpu::GpuConfig;
use ewc_telemetry::{export, TelemetrySink};
use ewc_workloads::{AesWorkload, BlackScholesWorkload, SearchWorkload, Workload};

fn main() {
    let cfg = GpuConfig::tesla_c1060();
    let aes: Arc<dyn Workload> = Arc::new(AesWorkload::fig7(&cfg));
    let search: Arc<dyn Workload> = Arc::new(SearchWorkload::tables56(&cfg));
    let bs: Arc<dyn Workload> = Arc::new(BlackScholesWorkload::tables56(&cfg));

    let rt = Arc::new(
        Runtime::builder(RuntimeConfig {
            threshold_factor: 8, // consider consolidation at 8 pending requests
            ..RuntimeConfig::default()
        })
        .workload("encryption", Arc::clone(&aes))
        .workload("search", Arc::clone(&search))
        .workload("blackscholes", Arc::clone(&bs))
        .template(Template::heterogeneous(
            "search+bs",
            &["search", "blackscholes"],
        ))
        .template(Template::homogeneous("encryption"))
        .template(Template::homogeneous("blackscholes"))
        .template(Template::homogeneous("search"))
        .telemetry(TelemetrySink::enabled())
        .build(),
    );

    // 24 users in three bursts; each burst's requests arrive while the
    // previous ones are still pending, so the backend sees real groups.
    let mut threads = Vec::new();
    for user in 0..24u64 {
        let rt = Arc::clone(&rt);
        let w: Arc<dyn Workload> = match user % 3 {
            0 => Arc::clone(&aes),
            1 => Arc::clone(&search),
            _ => Arc::clone(&bs),
        };
        let name = match user % 3 {
            0 => "encryption",
            1 => "search",
            _ => "blackscholes",
        };
        threads.push(thread::spawn(move || {
            let mut fe = rt.connect();
            let (args, bufs) = w.build_args(&mut fe, user).expect("upload");
            fe.configure_call(w.blocks(), w.desc().threads_per_block)
                .unwrap();
            for a in &args {
                fe.setup_argument(*a).unwrap();
            }
            fe.launch(name).expect("queue");
            fe.sync().expect("drain");
            let out = fe
                .memcpy_d2h(bufs.output, 0, bufs.output_len)
                .expect("download");
            assert_eq!(out, w.expected_output(user), "user {user} result");
            (user, name)
        }));
    }
    for t in threads {
        let (user, name) = t.join().expect("user thread");
        println!("user {user:2} ({name}) verified");
    }

    let rt = Arc::into_inner(rt).expect("all users done");
    let report = rt.shutdown();
    println!("\n== backend report ==");
    println!(
        "wall time:  {:.2} s, energy {:.1} kJ",
        report.elapsed_s,
        report.energy.energy_j / 1e3
    );
    println!(
        "launches: {} ({} consolidated), cpu-offloaded kernels: {}",
        report.stats.launches, report.stats.consolidated_launches, report.stats.cpu_executions
    );
    for rec in &report.stats.records {
        println!(
            "  {:?}: {} kernels via '{}' — predicted {:.1} s, actual {:.1} s",
            rec.choice,
            rec.kernels.len(),
            rec.template,
            rec.predicted_time_s,
            rec.actual_time_s
        );
    }

    let snap = report.telemetry.expect("telemetry was enabled");
    println!("\n== telemetry ==");
    print!("{}", export::summary::render(&snap));
    let path = "enterprise_trace.json";
    match std::fs::write(path, export::chrome::render(&snap)) {
        Ok(()) => println!(
            "\nwrote {path} ({} spans, {} decisions) — open it in https://ui.perfetto.dev",
            snap.spans.len(),
            snap.audit.len()
        ),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
