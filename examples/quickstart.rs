//! Quickstart: consolidate a handful of encryption requests from
//! separate "user processes" and compare against running them on the CPU.
//!
//! ```text
//! cargo run -p ewc-bench --release --example quickstart
//! ```

use std::sync::Arc;

use ewc_core::{Runtime, RuntimeConfig, Template};
use ewc_gpu::GpuConfig;
use ewc_workloads::{AesWorkload, Workload};

fn main() {
    let gpu_cfg = GpuConfig::tesla_c1060();
    let aes = Arc::new(AesWorkload::fig7(&gpu_cfg));

    // 1. Stand up the runtime: register the workload the data centre
    //    serves and the template that can consolidate it. Building the
    //    runtime trains the power model on the Rodinia-like suite.
    let rt = Runtime::builder(RuntimeConfig::default())
        .workload("encryption", Arc::clone(&aes) as Arc<dyn Workload>)
        .template(Template::homogeneous("encryption"))
        .build();

    // 2. Each user request gets its own frontend (process context).
    //    The frontend speaks the intercepted CUDA-style API: malloc,
    //    memcpy, configure_call, setup_argument, launch.
    let mut sessions = Vec::new();
    for user in 0..6u64 {
        let mut fe = rt.connect();
        let (key, tables) = aes.constant_data().expect("AES ships constant tables");
        fe.register_constant(key, &tables).expect("constant upload");
        let (args, bufs) = aes.build_args(&mut fe, user).expect("upload input");
        fe.configure_call(aes.blocks(), aes.desc().threads_per_block)
            .unwrap();
        for a in &args {
            fe.setup_argument(*a).unwrap();
        }
        let ticket = fe.launch("encryption").expect("queue kernel");
        println!("user {user}: queued kernel, ticket {ticket}");
        sessions.push((fe, bufs, user));
    }

    // 3. Wait for the batch and read results back.
    sessions[0].0.sync().expect("drain");
    for (fe, bufs, user) in &sessions {
        let out = fe
            .memcpy_d2h(bufs.output, 0, bufs.output_len)
            .expect("download");
        let ok = out == aes.expected_output(*user);
        println!(
            "user {user}: {} bytes encrypted, verified = {ok}",
            out.len()
        );
        assert!(ok);
    }

    // 4. Shut down and inspect what the framework decided and spent.
    let report = rt.shutdown();
    println!("\n== runtime report ==");
    println!("elapsed:        {:.2} s", report.elapsed_s);
    println!(
        "system energy:  {:.0} J (avg {:.0} W)",
        report.energy.energy_j, report.energy.avg_power_w
    );
    println!("messages:       {}", report.stats.messages);
    println!(
        "overhead:       {:.3} s (staging {:.3}, channel {:.3}, coordination {:.3})",
        report.stats.overhead_s(),
        report.stats.staging_s,
        report.stats.channel_s,
        report.stats.coordination_s
    );
    for rec in &report.stats.records {
        println!(
            "decision: {:?} via '{}' over {} kernels — predicted {:.2} s / {:.0} J, actual {:.2} s",
            rec.choice,
            rec.template,
            rec.kernels.len(),
            rec.predicted_time_s,
            rec.predicted_energy_j,
            rec.actual_time_s
        );
    }
}
